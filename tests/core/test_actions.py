"""Unit tests for repro.core.actions (§2.2/§2.5 action schemas)."""

import pytest

from repro.core.actions import Action, ActionKind, give, notify, pay, transfer
from repro.core.items import document, money
from repro.core.parties import consumer, producer, trusted
from repro.errors import ModelError

C = consumer("c")
P = producer("p")
T = trusted("t")
D = document("d")
M = money(10)


class TestConstruction:
    def test_give_builds_give_action(self):
        a = give(P, C, D)
        assert a.kind is ActionKind.GIVE
        assert a.sender == P and a.recipient == C and a.item == D
        assert not a.inverted

    def test_pay_builds_pay_action(self):
        a = pay(C, P, M)
        assert a.kind is ActionKind.PAY
        assert a.item == M

    def test_transfer_dispatches_on_item(self):
        assert transfer(C, P, M).kind is ActionKind.PAY
        assert transfer(P, C, D).kind is ActionKind.GIVE

    def test_pay_requires_money(self):
        with pytest.raises(ModelError):
            Action(ActionKind.PAY, C, P, D)

    def test_give_rejects_money(self):
        with pytest.raises(ModelError, match="must use pay"):
            Action(ActionKind.GIVE, C, P, M)

    def test_transfer_requires_item(self):
        with pytest.raises(ModelError):
            Action(ActionKind.GIVE, P, C, None)

    def test_self_action_rejected(self):
        with pytest.raises(ModelError):
            give(P, P, D)

    def test_negative_deadline_rejected(self):
        with pytest.raises(ModelError):
            give(P, C, D, deadline=-1)

    def test_deadline_recorded(self):
        assert give(P, T, D, deadline=50.0).deadline == 50.0


class TestNotify:
    def test_notify_from_trusted(self):
        a = notify(T, C)
        assert a.kind is ActionKind.NOTIFY
        assert a.item is None
        assert not a.is_transfer

    def test_notify_from_principal_rejected(self):
        with pytest.raises(ModelError, match="only trusted"):
            notify(C, P)  # type: ignore[arg-type]

    def test_notify_has_no_inverse(self):
        with pytest.raises(ModelError):
            notify(T, C).inverse()

    def test_notify_cannot_carry_item(self):
        with pytest.raises(ModelError):
            Action(ActionKind.NOTIFY, T, C, D)

    def test_notify_cannot_be_inverted_flag(self):
        with pytest.raises(ModelError):
            Action(ActionKind.NOTIFY, T, C, None, inverted=True)


class TestInverse:
    def test_inverse_flips_flag(self):
        a = give(P, T, D)
        assert a.inverse().inverted
        assert a.inverse().sender == P  # notation keeps original direction

    def test_double_inverse_is_identity(self):
        a = pay(C, T, M)
        assert a.inverse().inverse() == a

    def test_inverse_drops_deadline(self):
        a = give(P, T, D, deadline=10.0)
        assert a.inverse().deadline is None

    def test_compensates(self):
        a = pay(C, T, M)
        assert a.inverse().compensates(a)
        assert a.compensates(a.inverse())
        assert not a.compensates(a)
        assert not a.compensates(give(P, T, D))

    def test_notify_compensates_nothing(self):
        assert not notify(T, C).compensates(pay(C, T, M))
        assert not pay(C, T, M).compensates(notify(T, C))


class TestEffectiveDirection:
    def test_forward_transfer(self):
        a = give(P, T, D)
        assert a.effective_sender == P
        assert a.effective_recipient == T

    def test_inverted_transfer_reverses_flow(self):
        # give⁻¹_{p->t}(d): t physically returns d to p.
        a = give(P, T, D).inverse()
        assert a.effective_sender == T
        assert a.effective_recipient == P


class TestRendering:
    def test_give_str(self):
        assert str(give(P, C, D)) == "give[p->c](d)"

    def test_inverse_str(self):
        assert str(give(P, C, D).inverse()) == "give^-1[p->c](d)"

    def test_pay_str(self):
        assert str(pay(C, P, M)) == "pay[c->p]($10.00)"

    def test_notify_str(self):
        assert str(notify(T, C)) == "notify[t](c)"


class TestValueSemantics:
    def test_equal_actions_hash_equal(self):
        assert hash(give(P, C, D)) == hash(give(P, C, D))

    def test_deadline_distinguishes(self):
        assert give(P, C, D) != give(P, C, D, deadline=5.0)

    def test_usable_in_sets(self):
        s = {give(P, C, D), give(P, C, D), pay(C, P, M)}
        assert len(s) == 2
