"""Unit tests for repro.core.protocol (role synthesis)."""

import pytest

from repro.core.actions import ActionKind
from repro.core.indemnity import apply_plan, plan_indemnities
from repro.core.execution import recover_execution
from repro.core.parties import broker, consumer, producer, trusted
from repro.core.protocol import synthesize_protocol
from repro.errors import ProtocolError
from repro.workloads import example2


def _protocol(problem):
    sequence = problem.execution_sequence()
    return synthesize_protocol(problem.interaction, sequence, problem.name)


class TestRoles:
    def test_every_principal_has_a_role(self, ex1):
        proto = _protocol(ex1)
        names = {p.name for p in proto.roles}
        assert names == {"Consumer", "Broker", "Producer"}

    def test_every_trusted_has_a_spec(self, ex1):
        proto = _protocol(ex1)
        assert {t.name for t in proto.trusted_specs} == {"Trusted1", "Trusted2"}

    def test_consumer_sends_unconditionally(self, ex1):
        proto = _protocol(ex1)
        (instr,) = proto.role_of(consumer("Consumer")).instructions
        assert instr.preconditions == frozenset()
        assert instr.action.kind is ActionKind.PAY

    def test_broker_purchase_guarded_by_notify(self, ex1):
        proto = _protocol(ex1)
        role = proto.role_of(broker("Broker"))
        buy = next(i for i in role.instructions if i.action.item.is_money)
        notifies = [a for a in buy.preconditions if a.kind is ActionKind.NOTIFY]
        assert notifies, "broker must be notified before spending"
        assert all(a.recipient.name == "Broker" for a in buy.preconditions)

    def test_broker_delivery_guarded_by_document_receipt(self, ex1):
        proto = _protocol(ex1)
        role = proto.role_of(broker("Broker"))
        deliver = next(i for i in role.instructions if not i.action.item.is_money)
        received_doc = [
            a
            for a in deliver.preconditions
            if a.is_transfer and a.item is not None and not a.item.is_money
        ]
        assert received_doc, "broker cannot deliver before holding the document"

    def test_preconditions_are_locally_observable(self, ex1):
        proto = _protocol(ex1)
        for role in proto.roles.values():
            for instruction in role.instructions:
                for guard in instruction.preconditions:
                    assert guard.effective_recipient == role.party

    def test_instruction_ready_logic(self, ex1):
        proto = _protocol(ex1)
        role = proto.role_of(broker("Broker"))
        buy = role.instructions[0]
        assert not buy.ready(set())
        assert buy.ready(set(buy.preconditions))

    def test_role_of_unknown_party_raises(self, ex1):
        proto = _protocol(ex1)
        with pytest.raises(ProtocolError):
            proto.role_of(consumer("Stranger"))

    def test_spec_of_unknown_agent_raises(self, ex1):
        proto = _protocol(ex1)
        with pytest.raises(ProtocolError):
            proto.spec_of(trusted("Nobody"))


class TestTrustedSpecs:
    def test_deposits_and_entitlements_are_swapped(self, tiny):
        proto = _protocol(tiny)
        spec = proto.spec_of(trusted("Trusted"))
        c, p = consumer("Customer"), producer("Producer")
        assert spec.expected_from(c).is_money
        assert not spec.expected_from(p).is_money
        assert not spec.owed_to(c).is_money  # customer gets the document
        assert spec.owed_to(p).is_money

    def test_non_participant_queries_raise(self, tiny):
        proto = _protocol(tiny)
        spec = proto.spec_of(trusted("Trusted"))
        with pytest.raises(ProtocolError):
            spec.expected_from(consumer("Stranger"))
        with pytest.raises(ProtocolError):
            spec.owed_to(consumer("Stranger"))

    def test_participants_listed(self, tiny):
        proto = _protocol(tiny)
        spec = proto.spec_of(trusted("Trusted"))
        assert {p.name for p in spec.participants} == {"Customer", "Producer"}

    def test_deadline_propagates(self, tiny):
        sequence = tiny.execution_sequence()
        proto = synthesize_protocol(tiny.interaction, sequence, tiny.name, deadline=42.0)
        assert proto.spec_of(trusted("Trusted")).deadline == 42.0


class TestIndemnityProtocol:
    def test_indemnity_deposit_becomes_instruction(self):
        problem = example2()
        cover = problem.interaction.find_edge("Consumer", "Trusted1")
        plan = plan_indemnities(problem, [cover])
        sequence = apply_plan(plan, recover_execution(plan.verdict.trace))
        proto = synthesize_protocol(
            problem.interaction, sequence, problem.name, indemnities=plan.offers
        )
        b1 = proto.role_of(broker("Broker1"))
        escrow_sends = [
            i for i in b1.instructions if "indemnity" in i.action.item.label
        ]
        assert len(escrow_sends) == 1
        assert escrow_sends[0].preconditions == frozenset()
        spec = proto.spec_of(trusted("Trusted1"))
        assert len(spec.indemnities) == 1

    def test_describe_includes_roles_and_escrows(self, ex1):
        proto = _protocol(ex1)
        text = "\n".join(proto.describe())
        assert "role Consumer" in text
        assert "escrow Trusted1" in text
