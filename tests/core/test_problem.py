"""Unit tests for repro.core.problem (the ExchangeProblem façade)."""

import pytest

from repro.errors import GraphError


class TestPipeline:
    def test_sequencing_graph_derivation(self, ex1):
        assert len(ex1.sequencing_graph().commitments) == 4

    def test_reduce_and_feasibility_agree(self, ex1, ex2):
        assert ex1.reduce().feasible == ex1.feasibility().feasible is True
        assert ex2.reduce().feasible == ex2.feasibility().feasible is False

    def test_execution_sequence_roundtrip(self, ex1):
        assert len(ex1.execution_sequence()) == 10

    def test_validate_returns_self(self, ex1):
        assert ex1.validate() is ex1

    def test_validate_raises_on_bad_graph(self, ex1):
        from repro.core.parties import trusted

        broken = ex1.copy()
        broken.interaction.add_trusted(trusted("dangling"))
        with pytest.raises(GraphError):
            broken.validate()


class TestWithTrust:
    def test_with_trust_adds_edge(self, ex2):
        variant = ex2.with_trust("Source1", "Broker1")
        src = next(p for p in variant.interaction.parties if p.name == "Source1")
        b1 = next(p for p in variant.interaction.parties if p.name == "Broker1")
        assert variant.trust.trusts(src, b1)

    def test_with_trust_does_not_mutate_original(self, ex2):
        before = len(ex2.trust)
        ex2.with_trust("Source1", "Broker1")
        assert len(ex2.trust) == before

    def test_with_trust_renames(self, ex2):
        variant = ex2.with_trust("Source1", "Broker1")
        assert "trust(Source1->Broker1)" in variant.name

    def test_with_trust_unknown_party_raises(self, ex2):
        with pytest.raises(KeyError):
            ex2.with_trust("Nobody", "Broker1")


class TestCopy:
    def test_copy_is_deep_enough(self, ex1):
        clone = ex1.copy()
        clone.interaction.mark_priority(clone.interaction.edges[0])
        assert ex1.interaction.priority_edges != clone.interaction.priority_edges

    def test_copy_preserves_name(self, ex1):
        assert ex1.copy().name == ex1.name

    def test_different_strategies_same_verdict(self, ex1, ex2):
        for problem, expected in ((ex1, True), (ex2, False)):
            verdicts = {
                problem.feasibility(strategy=s).feasible for s in ("fifo", "lifo")
            }
            assert verdicts == {expected}
