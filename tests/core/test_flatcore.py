"""Unit tests for repro.core.flatcore (compile → run → decompile)."""

import random

import pytest

from repro.conformance.oracles import trace_key
from repro.core.flatcore import (
    GraphArena,
    check_feasibility_flat,
    check_feasibility_flat_batch,
    compile_graph,
    reduce_graph_compiled,
    reduce_graph_flat,
)
from repro.core.reduction import reduce_graph
from repro.errors import ReductionError
from repro.workloads import example1, example2, oversale, resale_chain, star


class TestCompile:
    def test_counts_match_graph(self, ex1):
        sg = ex1.sequencing_graph()
        compiled = compile_graph(sg)
        assert compiled.n_edges == len(sg.edges)
        assert compiled.n_commitments == len(sg.commitments)
        assert compiled.n_conjunctions == len(sg.conjunctions)

    def test_csr_rows_partition_the_edges(self, ex1):
        compiled = compile_graph(ex1.sequencing_graph())
        assert compiled.c_off[0] == 0 and compiled.j_off[0] == 0
        assert compiled.c_off[-1] == compiled.n_edges
        assert compiled.j_off[-1] == compiled.n_edges
        assert sorted(compiled.c_adj) == list(range(compiled.n_edges))
        assert sorted(compiled.j_adj) == list(range(compiled.n_edges))
        # Each CSR row inverts the per-edge incidence columns.
        for c in range(compiled.n_commitments):
            row = compiled.c_adj[compiled.c_off[c] : compiled.c_off[c + 1]]
            assert all(compiled.edge_commitment[e] == c for e in row)
            assert compiled.cc0[c] == len(row)
        for j in range(compiled.n_conjunctions):
            row = compiled.j_adj[compiled.j_off[j] : compiled.j_off[j + 1]]
            assert all(compiled.edge_conjunction[e] == j for e in row)
            assert compiled.jc0[j] == len(row)

    def test_id_sums_and_red_counts(self, ex1):
        sg = ex1.sequencing_graph()
        compiled = compile_graph(sg)
        for c in range(compiled.n_commitments):
            row = compiled.c_adj[compiled.c_off[c] : compiled.c_off[c + 1]]
            assert compiled.csum0[c] == sum(row)
        for j in range(compiled.n_conjunctions):
            row = compiled.j_adj[compiled.j_off[j] : compiled.j_off[j + 1]]
            assert compiled.jsum0[j] == sum(row)
            reds = [e for e in row if compiled.edge_red[e]]
            assert compiled.rj0[j] == len(reds)
            assert compiled.jrsum0[j] == sum(reds)
        assert sum(compiled.edge_red) == sum(1 for e in sg.edges if e.is_red)

    def test_seeds_are_the_initially_eligible_edges(self, ex2_variant1):
        # example2 variant 1 has a persona waiver: with the clause on, the
        # waived red is seedable earlier than with the clause off.
        compiled = compile_graph(ex2_variant1.sequencing_graph())
        assert set(compiled.seeds_off) <= set(compiled.seeds_on)


class TestDecompile:
    def test_trace_equals_indexed_on_example1(self, ex1):
        sg = ex1.sequencing_graph()
        trace = reduce_graph_flat(sg)
        assert trace_key(trace) == trace_key(reduce_graph(sg))
        assert trace.graph is sg
        assert trace.feasible

    def test_infeasible_blockages_survive_decompilation(self, ex2):
        sg = ex2.sequencing_graph()
        flat = reduce_graph_flat(sg)
        indexed = reduce_graph(sg)
        assert not flat.feasible
        assert flat.remaining == indexed.remaining
        assert flat.blockages == indexed.blockages

    def test_step_objects_reference_graph_nodes(self, ex1):
        sg = ex1.sequencing_graph()
        edges = set(sg.edges)
        for step in reduce_graph_flat(sg).steps:
            assert step.edge in edges

    def test_subgraph_after_edge_removal(self, ex1):
        sg = ex1.sequencing_graph()
        sub = sg.with_edges_removed(sg.edges[:2])
        assert trace_key(reduce_graph_flat(sub)) == trace_key(reduce_graph(sub))


class TestStrategies:
    def test_unknown_strategy_error_matches_indexed(self, ex1):
        sg = ex1.sequencing_graph()
        with pytest.raises(ReductionError, match="unknown reduction strategy"):
            reduce_graph_flat(sg, strategy="bogus")

    def test_random_strategy_default_rng_is_seeded(self, ex1):
        sg = ex1.sequencing_graph()
        assert trace_key(reduce_graph_flat(sg, strategy="random")) == trace_key(
            reduce_graph(sg, strategy="random")
        )

    def test_compiled_graph_is_reusable(self, ex1):
        # One compile, many runs: scratch state must never leak between runs.
        compiled = compile_graph(ex1.sequencing_graph())
        first = reduce_graph_compiled(compiled, strategy="lifo")
        reduce_graph_compiled(compiled, strategy="random", rng=random.Random(4))
        again = reduce_graph_compiled(compiled, strategy="lifo")
        assert trace_key(first) == trace_key(again)

    def test_persona_toggle(self, ex2_variant1):
        sg = ex2_variant1.sequencing_graph()
        assert reduce_graph_flat(sg, enable_persona_clause=True).feasible
        assert not reduce_graph_flat(sg, enable_persona_clause=False).feasible


class TestFlatVerdict:
    def test_counts_match_trace(self):
        for problem in (example1(), example2(), star(4), oversale()):
            sg = problem.sequencing_graph()
            trace = reduce_graph(sg)
            verdict = check_feasibility_flat(sg)
            assert verdict.feasible == trace.feasible
            assert verdict.steps == len(trace.steps)
            assert verdict.remaining == len(trace.remaining)
            assert verdict.blockages == len(trace.blockages)

    def test_accepts_precompiled_graph(self, ex1):
        compiled = compile_graph(ex1.sequencing_graph())
        assert check_feasibility_flat(compiled).feasible


class TestGraphArena:
    def test_single_problem_arena(self, ex1):
        graphs = [ex1.sequencing_graph()]
        arena = GraphArena.from_graphs(graphs)
        assert arena.n_problems == 1
        assert arena.reduce_all() == [check_feasibility_flat(graphs[0])]

    def test_mixed_batch_keeps_input_order(self):
        problems = [example1(), example2(), resale_chain(4), star(3)]
        graphs = [p.sequencing_graph() for p in problems]
        verdicts = check_feasibility_flat_batch(graphs)
        assert [v.feasible for v in verdicts] == [True, False, True, True]
        assert verdicts == [check_feasibility_flat(g) for g in graphs]

    def test_persona_clause_off_propagates(self, ex2_variant1):
        graphs = [ex2_variant1.sequencing_graph()]
        on = check_feasibility_flat_batch(graphs)
        off = check_feasibility_flat_batch(graphs, enable_persona_clause=False)
        assert on[0].feasible and not off[0].feasible
