"""End-to-end tests for the repro-trust CLI."""

import pytest

from repro.cli import EXAMPLES, main
from repro.spec import format_problem
from repro.workloads import example1


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "example1.exchange"
    path.write_text(format_problem(example1()), encoding="utf-8")
    return str(path)


class TestCheck:
    def test_feasible_exits_zero(self, capsys):
        assert main(["check", "--example", "example1"]) == 0
        out = capsys.readouterr().out
        assert "FEASIBLE" in out

    def test_infeasible_exits_one(self, capsys):
        assert main(["check", "--example", "example2"]) == 1
        out = capsys.readouterr().out
        assert "blocked by red" in out

    def test_spec_file_input(self, spec_file, capsys):
        assert main(["check", spec_file]) == 0

    def test_unknown_example_errors(self, capsys):
        assert main(["check", "--example", "nope"]) == 2
        assert "unknown example" in capsys.readouterr().err

    def test_no_input_errors(self, capsys):
        assert main(["check"]) == 2


class TestSequence:
    def test_prints_ten_steps(self, capsys):
        assert main(["sequence", "--example", "example1"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 10
        assert lines[0].startswith("1. ")


class TestProtocol:
    def test_prints_roles_and_escrows(self, capsys):
        assert main(["protocol", "--example", "example1"]) == 0
        out = capsys.readouterr().out
        assert "role Consumer" in out
        assert "escrow Trusted2" in out


class TestIndemnify:
    def test_figure7_plan(self, capsys):
        assert main(["indemnify", "--example", "figure7"]) == 0
        out = capsys.readouterr().out
        assert "total $70.00" in out

    def test_non_bundle_exits_one(self, capsys):
        assert main(["indemnify", "--example", "example1"]) == 1


class TestSimulate:
    def test_honest_run(self, capsys):
        assert main(["simulate", "--example", "example1"]) == 0
        out = capsys.readouterr().out
        assert "completed exchanges: 2" in out
        assert "[OK ] Consumer" in out

    def test_adversarial_run_still_safe(self, capsys):
        code = main(["simulate", "--example", "example1", "--adversary", "Broker:0"])
        assert code == 0
        assert "[OK ]" in capsys.readouterr().out

    def test_infeasible_example_auto_indemnifies(self, capsys):
        assert main(["simulate", "--example", "example2"]) == 0
        out = capsys.readouterr().out
        assert "applying minimal indemnity plan" in out
        assert "completed exchanges: 4" in out


class TestRender:
    def test_interaction_text(self, capsys):
        assert main(["render", "--example", "example1"]) == 0
        assert "principals:" in capsys.readouterr().out

    def test_interaction_dot(self, capsys):
        assert main(["render", "--example", "example1", "--dot"]) == 0
        assert "shape=ellipse" in capsys.readouterr().out

    def test_sequencing_reduced(self, capsys):
        code = main(
            ["render", "--example", "example1", "--what", "sequencing", "--reduced"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "commitments" in out and "FEASIBLE" in out

    def test_sequencing_dot_with_reduction(self, capsys):
        code = main(
            [
                "render",
                "--example",
                "example1",
                "--what",
                "sequencing",
                "--dot",
                "--reduced",
            ]
        )
        assert code == 0
        assert "style=dashed" in capsys.readouterr().out


class TestCost:
    def test_chain_table(self, capsys):
        assert main(["cost", "--max-brokers", "2"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out

    def test_single_problem(self, capsys):
        assert main(["cost", "--example", "example1"]) == 0
        assert "2.0x" in capsys.readouterr().out


class TestChaos:
    def test_smoke_sweep_exits_zero(self, capsys):
        assert main(["chaos", "-n", "25", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "safety violations:    0" in out
        assert "detector armed" in out

    def test_report_written(self, tmp_path, capsys):
        import json

        report_path = str(tmp_path / "chaos.json")
        assert main(
            ["chaos", "-n", "25", "--seed", "0", "--report", report_path]
        ) == 0
        data = json.loads(open(report_path, encoding="utf-8").read())
        assert data["violation_count"] == 0
        assert data["baseline_violations"] >= 1
        assert len(data["verdicts"]) == 25

    def test_jobs_flag_matches_serial(self, tmp_path):
        import json

        serial_path = str(tmp_path / "serial.json")
        pooled_path = str(tmp_path / "pooled.json")
        main(["chaos", "-n", "16", "--seed", "5", "--report", serial_path])
        main(["chaos", "-n", "16", "--seed", "5", "--jobs", "2",
              "--report", pooled_path])
        serial = json.loads(open(serial_path, encoding="utf-8").read())
        pooled = json.loads(open(pooled_path, encoding="utf-8").read())
        assert serial["verdicts"] == pooled["verdicts"]


class TestExamples:
    def test_lists_all(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        for name in EXAMPLES:
            assert name in out
        assert "infeasible" in out


class TestExtensionCommands:
    def test_distributed(self, capsys):
        assert main(["distributed", "--example", "example1"]) == 0
        out = capsys.readouterr().out
        assert "centralized agrees: True" in out
        assert "rounds=" in out

    def test_distributed_infeasible_exits_one(self, capsys):
        assert main(["distributed", "--example", "example2"]) == 1

    def test_petri(self, capsys):
        assert main(["petri", "--example", "example1", "--witness"]) == 0
        out = capsys.readouterr().out
        assert "coverable: True" in out
        assert "complete:Trusted1" in out

    def test_petri_infeasible_exits_one(self, capsys):
        assert main(["petri", "--example", "example2"]) == 1
        assert "coverable: False" in capsys.readouterr().out

    def test_sweep_priority(self, capsys):
        assert main(["sweep", "priority", "--samples", "5"]) == 0
        assert "feasible" in capsys.readouterr().out

    def test_sweep_trust(self, capsys):
        assert main(["sweep", "trust", "--samples", "4"]) == 0
        assert "unlocked" in capsys.readouterr().out

    def test_sweep_gap(self, capsys):
        assert main(["sweep", "gap", "--samples", "10"]) == 0
        out = capsys.readouterr().out
        assert "unsound=0" in out


class TestEngineFlag:
    """``--engine`` on sweep/chaos: flat works, unknown names exit 2."""

    def test_sweep_flat_engine(self, capsys):
        assert main(["sweep", "priority", "--samples", "5", "--engine", "flat"]) == 0
        assert "feasible" in capsys.readouterr().out

    def test_sweep_gap_flat_engine(self, capsys):
        assert main(["sweep", "gap", "--samples", "8", "--engine", "flat"]) == 0
        assert "unsound=0" in capsys.readouterr().out

    def test_chaos_flat_engine_matches_indexed(self, tmp_path):
        import json

        indexed_path = str(tmp_path / "indexed.json")
        flat_path = str(tmp_path / "flat.json")
        assert main(["chaos", "-n", "10", "--report", indexed_path]) == 0
        assert main(
            ["chaos", "-n", "10", "--engine", "flat", "--report", flat_path]
        ) == 0
        indexed = json.loads(open(indexed_path, encoding="utf-8").read())
        flat = json.loads(open(flat_path, encoding="utf-8").read())
        assert flat["verdicts"] == indexed["verdicts"]
        assert flat["engine"] == "flat"
        assert flat["process_cpus"] >= 1

    def test_sweep_unknown_engine_exits_two_with_usage(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "gap", "--samples", "2", "--engine", "bogus"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "invalid choice: 'bogus'" in err

    def test_chaos_unknown_engine_exits_two_with_usage(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["chaos", "-n", "2", "--engine", "warp"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "invalid choice: 'warp'" in err


class TestFuzzCommand:
    def test_fuzz_smoke_with_flat_arm(self, tmp_path, capsys):
        import json

        report_path = str(tmp_path / "fuzz.json")
        code = main(
            ["fuzz", "-n", "6", "--no-sim", "--report", report_path]
        )
        assert code == 0
        data = json.loads(open(report_path, encoding="utf-8").read())
        assert data["discrepancies"] == []
        assert data["flat_arm"] is True
        assert data["process_cpus"] >= 1

    def test_fuzz_no_flat_arm_flag(self, tmp_path):
        import json

        report_path = str(tmp_path / "fuzz.json")
        code = main(
            ["fuzz", "-n", "4", "--no-sim", "--no-flat-arm", "--report", report_path]
        )
        assert code == 0
        data = json.loads(open(report_path, encoding="utf-8").read())
        assert data["flat_arm"] is False

    def test_petri_dot(self, capsys):
        assert main(["petri", "--example", "example1", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "example1"')


class TestLint:
    """Exit-code contract: 0 clean / 1 findings / 2 usage error — matching
    the fuzz/chaos subcommand conventions."""

    FIXTURES = "tests/staticcheck/fixtures"

    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", "src"]) == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", self.FIXTURES]) == 1
        out = capsys.readouterr().out
        for code in ("DET001", "DET002", "MUT001", "MONEY001", "EXC001"):
            assert code in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "no/such/tree"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "src", "--select", "NOPE999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_select_narrows_to_one_rule(self, capsys):
        assert main(["lint", self.FIXTURES, "--select", "DET001"]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "DET002" not in out

    def test_json_format_is_machine_readable(self, capsys):
        import json as json_module

        assert main(["lint", self.FIXTURES, "--format", "json"]) == 1
        payload = json_module.loads(capsys.readouterr().out)
        # One per rule fixture (DET002 has two: set + payload sink).
        assert payload["count"] == 11
        assert payload["errors"] == 11
        assert payload["warnings"] == 0

    def test_fix_suggestions_render(self, capsys):
        assert main(["lint", self.FIXTURES, "--fix-suggestions"]) == 1
        assert "fix:" in capsys.readouterr().out

    def test_sarif_format_is_valid_sarif(self, capsys):
        import json as json_module

        assert main(["lint", self.FIXTURES, "--format", "sarif"]) == 1
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        result_rules = {result["ruleId"] for result in run["results"]}
        assert result_rules == rule_ids
        assert {"NET001", "ASY001", "ASY002", "LEDG001"} <= result_rules
        first = run["results"][0]
        location = first["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"]
        assert location["region"]["startLine"] >= 1

    def test_write_baseline_then_lint_is_clean(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main(
            ["lint", self.FIXTURES, "--baseline", baseline, "--write-baseline"]
        ) == 0
        assert "recorded 11 finding(s)" in capsys.readouterr().out
        assert main(["lint", self.FIXTURES, "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "11 baselined finding(s) suppressed" in out

    def test_baseline_still_fails_on_regressions(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        one_fixture = f"{self.FIXTURES}/exc001_control_flow.py"
        assert main(
            ["lint", one_fixture, "--baseline", baseline, "--write-baseline"]
        ) == 0
        capsys.readouterr()
        assert main(["lint", self.FIXTURES, "--baseline", baseline]) == 1
        out = capsys.readouterr().out
        assert "EXC001" not in out  # the recorded finding stays suppressed
        assert "DET001" in out  # everything else is a regression

    def test_write_baseline_without_baseline_is_usage_error(self, capsys):
        assert main(["lint", self.FIXTURES, "--write-baseline"]) == 2
        assert "--write-baseline requires --baseline" in capsys.readouterr().err

    def test_corrupt_baseline_is_usage_error(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json", encoding="utf-8")
        assert main(["lint", self.FIXTURES, "--baseline", str(baseline)]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_spec_warnings_do_not_fail(self, tmp_path, capsys):
        spec = tmp_path / "warned.exchange"
        spec.write_text(
            'problem "w"\n\n'
            "principal consumer C\nprincipal broker B\nprincipal producer P\n"
            "trusted T1\ntrusted T2\n\n"
            "exchange via T1 {\n    C pays $1.00\n    B gives d\n}\n"
            "exchange via T2 {\n    B pays $0.50\n    P gives d\n}\n\n"
            "priority B via T1\npriority B via T2\n",
            encoding="utf-8",
        )
        assert main(["lint", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "SPECW001" in out
        assert "warning" in out

class TestServe:
    def test_task_mode_run_is_safe(self, tmp_path, capsys):
        run_dir = str(tmp_path / "serve_run")
        assert (
            main(
                [
                    "serve",
                    "--example",
                    "simple-purchase",
                    "--run-dir",
                    run_dir,
                    "--spawn",
                    "task",
                    "--time-scale",
                    "0.005",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "served simple-purchase on port" in out
        assert "[OK ] Customer" in out
        import os

        assert os.path.exists(os.path.join(run_dir, "provenance.json"))

    def test_infeasible_problem_refused(self, capsys):
        assert main(["serve", "--example", "example2", "--spawn", "task"]) == 2
        assert "infeasible" in capsys.readouterr().err

    def test_client_requires_port(self, capsys):
        with pytest.raises(SystemExit):
            main(["client", "some.spec", "--party", "X"])

