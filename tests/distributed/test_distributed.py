"""Tests for the §9 distributed reduction engine."""

import pytest

from repro.core.reduction import reduce_graph
from repro.distributed import DistributedReduction, distributed_reduce
from repro.workloads import (
    RandomProblemConfig,
    example1,
    example2,
    example2_broker_trusts_source,
    example2_source_trusts_broker,
    figure7,
    poor_broker,
    random_problem,
    resale_chain,
    simple_purchase,
)

PAPER_CASES = [
    (simple_purchase, True),
    (example1, True),
    (example2, False),
    (poor_broker, False),
    (figure7, False),
    (example2_source_trusts_broker, True),
    (example2_broker_trusts_source, False),
]


class TestAgreementWithCentralized:
    @pytest.mark.parametrize(
        "factory,expected", PAPER_CASES, ids=[f.__name__ for f, _ in PAPER_CASES]
    )
    def test_paper_examples(self, factory, expected):
        problem = factory()
        trace = distributed_reduce(problem.sequencing_graph())
        assert trace.feasible == expected

    @pytest.mark.parametrize("n", [0, 1, 3, 8])
    def test_chains(self, n):
        problem = resale_chain(n, retail=100.0)
        assert distributed_reduce(problem.sequencing_graph()).feasible

    def test_random_topologies(self):
        for seed in range(40):
            config = RandomProblemConfig(
                n_principals=9, n_exchanges=6, priority_probability=0.6
            )
            problem = random_problem(config, seed=seed)
            graph = problem.sequencing_graph()
            central = reduce_graph(graph).feasible
            assert distributed_reduce(graph).feasible == central, seed

    def test_remaining_edges_match_centralized_on_example2(self):
        graph = example2().sequencing_graph()
        assert distributed_reduce(graph).remaining == reduce_graph(graph).remaining


class TestProtocolProperties:
    def test_no_agent_removes_foreign_edges(self):
        graph = example1().sequencing_graph()
        trace = distributed_reduce(graph)
        for party, removed in trace.removed_by.items():
            for edge in removed:
                assert edge.conjunction.agent == party

    def test_every_edge_removed_exactly_once(self):
        graph = example1().sequencing_graph()
        trace = distributed_reduce(graph)
        removed = [e for edges in trace.removed_by.values() for e in edges]
        assert len(removed) == len(set(removed)) == len(graph.edges)

    def test_message_count_bounded_by_edges(self):
        # At most one notification per removed edge (only edges whose
        # commitment has a live remote side generate one).
        for factory, _ in PAPER_CASES:
            graph = factory().sequencing_graph()
            trace = distributed_reduce(graph)
            total_removed = sum(len(v) for v in trace.removed_by.values())
            assert trace.messages <= total_removed

    def test_rounds_grow_with_chain_depth(self):
        shallow = distributed_reduce(resale_chain(1, retail=100.0).sequencing_graph())
        deep = distributed_reduce(resale_chain(6, retail=100.0).sequencing_graph())
        assert deep.rounds > shallow.rounds

    def test_persona_clause_ablation(self):
        graph = example2_source_trusts_broker().sequencing_graph()
        assert distributed_reduce(graph, enable_persona_clause=True).feasible
        assert not distributed_reduce(graph, enable_persona_clause=False).feasible

    def test_runner_object_reusable_state(self):
        graph = example1().sequencing_graph()
        runner = DistributedReduction(graph)
        trace = runner.run()
        assert trace.feasible
        # Re-running on the quiesced state changes nothing.
        again = runner.run()
        assert again.feasible
        assert again.remaining == trace.remaining
