"""Robustness fuzzing for the spec language.

The contract: for *any* input text, the pipeline either produces a valid
:class:`ExchangeProblem` or raises a :class:`SpecError` with a source
position — it must never crash with an arbitrary exception, loop, or
silently mis-parse.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.spec import format_problem, load, parse, tokenize
from repro.spec.tokens import TokenType

printable_junk = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=200
)
any_text = st.text(max_size=200)


@given(source=any_text)
@settings(max_examples=150, deadline=None)
def test_lexer_total(source):
    try:
        tokens = tokenize(source)
    except SpecError:
        return
    assert tokens[-1].type is TokenType.EOF


@given(source=printable_junk)
@settings(max_examples=150, deadline=None)
def test_parser_total(source):
    try:
        parse(source)
    except SpecError:
        return


@given(source=printable_junk)
@settings(max_examples=100, deadline=None)
def test_load_total(source):
    try:
        problem = load(source)
    except SpecError:
        return
    # Anything that loads must be a structurally valid problem.
    problem.validate()


@st.composite
def keyword_salad(draw):
    """Sequences of real tokens in random order — nastier than raw junk."""
    words = st.sampled_from(
        [
            "problem",
            "principal",
            "consumer",
            "broker",
            "producer",
            "trusted",
            "exchange",
            "via",
            "pays",
            "gives",
            "tag",
            "expects",
            "deadline",
            "priority",
            "trust",
            "{",
            "}",
            "->",
            "$10.00",
            "$1",
            "42",
            '"name"',
            "Alice",
            "Bob",
            "T1",
            "d",
        ]
    )
    return " ".join(draw(st.lists(words, max_size=30)))


@given(source=keyword_salad())
@settings(max_examples=200, deadline=None)
def test_token_salad_total(source):
    try:
        problem = load(source)
    except SpecError:
        return
    problem.validate()


@given(source=keyword_salad())
@settings(max_examples=100, deadline=None)
def test_successful_loads_roundtrip(source):
    try:
        problem = load(source)
    except SpecError:
        return
    text = format_problem(problem)
    again = load(text)
    assert [e.label for e in again.interaction.edges] == [
        e.label for e in problem.interaction.edges
    ]


@given(source=any_text)
@settings(max_examples=100, deadline=None)
def test_errors_carry_positions(source):
    try:
        load(source)
    except SpecError as exc:
        if exc.line is not None:
            assert exc.line >= 1
            assert "line" in str(exc)
    except Exception as exc:  # pragma: no cover - the property under test
        raise AssertionError(f"non-SpecError escaped: {type(exc).__name__}: {exc}")
