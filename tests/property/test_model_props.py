"""Property-based tests for the §2 formalism (actions, states, money)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import transfer
from repro.core.items import cents, document, money
from repro.core.parties import Party, Role
from repro.core.states import ExchangeState

names = st.from_regex(r"[A-Za-z][A-Za-z0-9_\-]{0,10}", fullmatch=True)
principal_roles = st.sampled_from([Role.CONSUMER, Role.BROKER, Role.PRODUCER])


@st.composite
def distinct_parties(draw):
    a = draw(names)
    b = draw(names.filter(lambda n: n != a))
    return Party(a, draw(principal_roles)), Party(b, draw(principal_roles))


@st.composite
def transfers(draw):
    sender, recipient = draw(distinct_parties())
    if draw(st.booleans()):
        item = document(draw(names))
    else:
        item = cents(draw(st.integers(0, 10**6)), tag=draw(names))
    return transfer(sender, recipient, item)


@given(action=transfers())
@settings(max_examples=100, deadline=None)
def test_inverse_is_involution(action):
    assert action.inverse().inverse() == action


@given(action=transfers())
@settings(max_examples=100, deadline=None)
def test_inverse_compensates_original(action):
    assert action.inverse().compensates(action)
    assert action.compensates(action.inverse())


@given(action=transfers())
@settings(max_examples=100, deadline=None)
def test_inverse_swaps_effective_direction(action):
    inv = action.inverse()
    assert inv.effective_sender == action.effective_recipient
    assert inv.effective_recipient == action.effective_sender


@given(action=transfers())
@settings(max_examples=100, deadline=None)
def test_pay_iff_money(action):
    from repro.core.actions import ActionKind

    assert (action.kind is ActionKind.PAY) == action.item.is_money


@given(actions=st.lists(transfers(), max_size=8))
@settings(max_examples=100, deadline=None)
def test_state_is_order_insensitive(actions):
    forward = ExchangeState.of(actions)
    backward = ExchangeState.of(reversed(actions))
    assert forward == backward


@given(actions=st.lists(transfers(), max_size=6))
@settings(max_examples=100, deadline=None)
def test_compensated_pairs_net_out(actions):
    state = ExchangeState.of(list(actions) + [a.inverse() for a in actions])
    assert state.net_uncompensated() == frozenset()


@given(actions=st.lists(transfers(), max_size=6, unique=True))
@settings(max_examples=100, deadline=None)
def test_uncompensated_equals_forward_set(actions):
    state = ExchangeState.of(actions)
    forwards = frozenset(a for a in actions if not a.inverted)
    assert state.net_uncompensated() == forwards


@given(amount=st.integers(0, 10**9))
@settings(max_examples=100, deadline=None)
def test_cents_roundtrip(amount):
    assert cents(amount).cents == amount


@given(dollars=st.integers(0, 10**6))
@settings(max_examples=100, deadline=None)
def test_whole_dollar_conversion_exact(dollars):
    assert money(dollars).cents == dollars * 100


@given(actions=st.lists(transfers(), max_size=8))
@settings(max_examples=100, deadline=None)
def test_actions_by_partitions_state(actions):
    state = ExchangeState.of(actions)
    union = set()
    parties = {a.effective_sender for a in state.actions}
    for party in parties:
        union |= state.actions_by(party)
    assert union == set(state.actions)
