"""Property-based tests for execution-sequence invariants (§5, §2.4).

Whatever the reduction order, a recovered execution sequence must:

* contain exactly one deposit per commitment and one release per
  entitlement;
* never violate a possession constraint (no party sends a document it has
  not yet been handed);
* notify a principal only before that principal's own deposit;
* conserve items: everything deposited is eventually released, to the
  counterpart.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.execution import StepKind, recover_execution
from repro.core.reduction import ReductionEngine
from repro.workloads import (
    RandomProblemConfig,
    example1,
    random_problem,
    resale_chain,
    simple_purchase,
)


def _sequence_for(problem, order_seed: int):
    rng = random.Random(order_seed)
    engine = ReductionEngine(problem.sequencing_graph())
    trace = engine.run(chooser=lambda options: rng.choice(options))
    if not trace.feasible:
        return None
    return recover_execution(trace)


FEASIBLE_FACTORIES = [
    lambda: example1(),
    lambda: simple_purchase(),
    lambda: resale_chain(2, retail=100.0),
    lambda: resale_chain(4, retail=100.0),
]


@given(factory_index=st.integers(0, 3), order_seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_no_possession_violations(factory_index, order_seed):
    problem = FEASIBLE_FACTORIES[factory_index]()
    sequence = _sequence_for(problem, order_seed)
    assert sequence is not None
    assert sequence.violated_constraints() == []


@given(factory_index=st.integers(0, 3), order_seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_one_deposit_per_commitment(factory_index, order_seed):
    problem = FEASIBLE_FACTORIES[factory_index]()
    sequence = _sequence_for(problem, order_seed)
    deposits = [s for s in sequence.steps if s.kind is StepKind.DEPOSIT]
    assert len(deposits) == len(problem.interaction.edges)
    deposited_edges = {s.commitment.edge for s in deposits}
    assert deposited_edges == set(problem.interaction.edges)


@given(factory_index=st.integers(0, 3), order_seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_items_conserved(factory_index, order_seed):
    problem = FEASIBLE_FACTORIES[factory_index]()
    sequence = _sequence_for(problem, order_seed)
    deposits = sorted(
        str(s.action.item) for s in sequence.steps if s.kind is StepKind.DEPOSIT
    )
    releases = sorted(
        str(s.action.item) for s in sequence.steps if s.kind is StepKind.RELEASE
    )
    assert deposits == releases


@given(factory_index=st.integers(0, 3), order_seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_release_goes_to_counterpart(factory_index, order_seed):
    problem = FEASIBLE_FACTORIES[factory_index]()
    interaction = problem.interaction
    sequence = _sequence_for(problem, order_seed)
    for step in sequence.steps:
        if step.kind is not StepKind.RELEASE:
            continue
        edge = step.commitment.edge
        assert step.action.recipient == edge.principal
        assert step.action.item == interaction.expects(edge)


@given(factory_index=st.integers(0, 3), order_seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_notify_precedes_target_deposit(factory_index, order_seed):
    # A notify says "your move": the target must still owe its deposit at
    # that trusted component.
    problem = FEASIBLE_FACTORIES[factory_index]()
    sequence = _sequence_for(problem, order_seed)
    for i, step in enumerate(sequence.steps):
        if step.kind is not StepKind.NOTIFY:
            continue
        agent = step.action.sender
        target = step.action.recipient
        later_deposits = [
            s
            for s in sequence.steps[i + 1 :]
            if s.kind is StepKind.DEPOSIT
            and s.action.sender == target
            and s.action.recipient == agent
        ]
        assert later_deposits, f"notify at {i} has no pending deposit from {target.name}"


@given(factory_index=st.integers(0, 3), order_seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_releases_follow_full_deposit_set(factory_index, order_seed):
    # A trusted agent releases only once every deposit it expects has landed.
    problem = FEASIBLE_FACTORIES[factory_index]()
    interaction = problem.interaction
    sequence = _sequence_for(problem, order_seed)
    seen_deposits: dict = {}
    for step in sequence.steps:
        if step.kind is StepKind.DEPOSIT:
            seen_deposits.setdefault(step.action.recipient, set()).add(step.action.sender)
        elif step.kind is StepKind.RELEASE:
            agent = step.action.sender
            expected = {e.principal for e in interaction.edges_at(agent)}
            assert seen_deposits.get(agent, set()) == expected


@given(
    problem_seed=st.integers(0, 300),
    order_seed=st.integers(0, 10_000),
    n_exchanges=st.integers(2, 6),
)
@settings(max_examples=50, deadline=None)
def test_random_feasible_problems_yield_valid_sequences(
    problem_seed, order_seed, n_exchanges
):
    config = RandomProblemConfig(
        n_principals=9, n_exchanges=n_exchanges, priority_probability=0.3
    )
    problem = random_problem(config, seed=problem_seed)
    sequence = _sequence_for(problem, order_seed)
    if sequence is None:  # infeasible instance — nothing to check
        return
    assert sequence.violated_constraints() == []
    deposits = [s for s in sequence.steps if s.kind is StepKind.DEPOSIT]
    assert len(deposits) == len(problem.interaction.edges)
