"""Property-based tests for §6 indemnity planning.

* The greedy (descending-cost) ordering is never beaten by any permutation.
* The closed form total = (k−2)·S + c_min holds for every bundle.
* Every indemnity amount equals the sum of the *other* pieces' costs.
* Plans make previously infeasible bundles feasible.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.indemnity import (
    brute_force_minimal_plan,
    commitment_cost,
    greedy_order,
    minimal_indemnity_plan,
    plan_indemnities,
    required_indemnity,
)
from repro.core.parties import consumer
from repro.workloads import broker_bundle

CONSUMER = consumer("Consumer")

prices_strategy = st.lists(
    st.integers(1, 200).map(float), min_size=2, max_size=4
)


def _bundle(prices):
    return broker_bundle(len(prices), tuple(prices))


@given(prices=prices_strategy)
@settings(max_examples=40, deadline=None)
def test_greedy_matches_brute_force(prices):
    problem = _bundle(prices)
    greedy = minimal_indemnity_plan(problem)
    brute = brute_force_minimal_plan(problem)
    assert greedy.feasible and brute.feasible
    assert greedy.total_cents == brute.total_cents


@given(prices=prices_strategy)
@settings(max_examples=60, deadline=None)
def test_closed_form(prices):
    problem = _bundle(prices)
    plan = minimal_indemnity_plan(problem)
    total = int(round(sum(prices) * 100))
    cheapest = int(round(min(prices) * 100))
    assert plan.total_cents == (len(prices) - 2) * total + cheapest


@given(prices=prices_strategy)
@settings(max_examples=60, deadline=None)
def test_amounts_cover_other_pieces(prices):
    problem = _bundle(prices)
    members = [e for e in problem.interaction.edges if e.principal == CONSUMER]
    total = sum(commitment_cost(e) for e in members)
    for edge in members:
        assert required_indemnity(problem, edge) == total - commitment_cost(edge)


@given(prices=prices_strategy)
@settings(max_examples=40, deadline=None)
def test_greedy_plan_unlocks_feasibility(prices):
    problem = _bundle(prices)
    if len(prices) >= 2:
        assert not problem.feasibility().feasible
    plan = minimal_indemnity_plan(problem)
    assert plan.feasible
    # k-1 offers: the last (cheapest) piece needs none.
    assert len(plan.offers) == len(prices) - 1


@given(prices=prices_strategy, data=st.data())
@settings(max_examples=40, deadline=None)
def test_any_full_order_is_feasible_but_never_cheaper(prices, data):
    problem = _bundle(prices)
    members = [e for e in problem.interaction.edges if e.principal == CONSUMER]
    order = data.draw(st.permutations(members))
    plan = plan_indemnities(problem, list(order))
    assert plan.feasible
    assert plan.total_cents >= minimal_indemnity_plan(problem).total_cents


@given(prices=prices_strategy)
@settings(max_examples=40, deadline=None)
def test_greedy_order_descends(prices):
    problem = _bundle(prices)
    order = greedy_order(problem, CONSUMER)
    costs = [commitment_cost(e) for e in order]
    assert costs == sorted(costs, reverse=True)
