"""Property: per-sender FIFO survives delay injection.

The reliable transport delivers one sender's messages in send order (fixed
latency over a deterministic queue).  Delay jitter could break that — a
later message drawing a smaller jitter would overtake an earlier one — so
the unreliable transport clamps per-link delivery times monotone.  This
suite drives randomized delay-only fault plans and asserts the ordering
claim holds for every (sender, recipient) pair.
"""

import random

from repro.core.items import cents
from repro.core.actions import pay
from repro.core.parties import consumer, trusted
from repro.sim.events import EventQueue
from repro.sim.faults import FaultPlan, LinkFault
from repro.sim.network import Network

T = trusted("t")


def _run_one(seed: int, n_senders: int, n_messages: int) -> None:
    rng = random.Random(seed)
    senders = [consumer(f"c{i}") for i in range(n_senders)]
    plan = FaultPlan(
        seed=seed,
        links=(LinkFault(max_delay=rng.uniform(0.5, 8.0)),),
        heal_at=None,  # jitter never heals: the hardest case for ordering
    )
    queue = EventQueue()
    network = Network(queue, latency=1.0, fault_plan=plan)
    arrivals: list[tuple[str, int]] = []  # (sender name, payload number)

    def handler(action, key):
        arrivals.append((action.sender.name, action.item.cents))

    network.register(T, handler)

    sent: dict[str, list[int]] = {s.name: [] for s in senders}
    serial = 1
    for step in range(n_messages):
        sender = rng.choice(senders)
        # Strictly increasing send times (so send order is well-defined),
        # spaced closely enough that jitter windows genuinely overlap.
        queue.schedule_at(
            step * 0.5 + rng.uniform(0.0, 0.4),
            lambda s=sender, n=serial: network.send(pay(s, T, cents(n))),
        )
        sent[sender.name].append(serial)
        serial += 1

    while (event := queue.pop()) is not None:
        event.callback()

    assert len(arrivals) == n_messages
    for name, expected in sent.items():
        observed = [n for who, n in arrivals if who == name]
        assert observed == expected, (
            f"seed {seed}: {name} sent {expected} but they arrived {observed}"
        )


def test_fifo_preserved_under_delay_injection():
    for seed in range(60):
        _run_one(seed, n_senders=3, n_messages=25)


def test_fifo_preserved_with_single_hot_sender():
    for seed in range(30):
        _run_one(seed, n_senders=1, n_messages=40)
