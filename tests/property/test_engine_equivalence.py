"""The indexed engine against the naive reference oracle.

The incremental :class:`~repro.core.reduction.ReductionEngine` keeps
adjacency indices and a dirty-candidate worklist; the retained
:class:`~repro.core.reduction_reference.ReferenceReductionEngine` rescans the
whole graph on every step.  They must be *step-for-step* indistinguishable —
same verdict, same removal sequence, same blockage diagnosis, same
commitment/conjunction disconnection orders — across every strategy and with
the §4.2.3 persona clause both on and off.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reduction import ReductionEngine, reduce_graph, replay
from repro.core.reduction_reference import (
    ReferenceReductionEngine,
    reference_reduce,
    replay_reference,
)
from repro.workloads import (
    RandomProblemConfig,
    broker_bundle,
    example1,
    example2,
    example2_broker_trusts_source,
    example2_source_trusts_broker,
    oversale,
    random_problem,
    resale_chain,
    star,
)

STRATEGIES = ["fifo", "lifo", "random"]


def _trace_key(trace):
    """Everything observable about a reduction, flattened for comparison."""
    return (
        trace.feasible,
        [
            (
                step.index,
                step.rule,
                step.edge,
                step.via_persona,
                step.commitment_disconnected,
                step.conjunction_disconnected,
            )
            for step in trace.steps
        ],
        trace.remaining,
        trace.commitment_order,
        trace.conjunction_order,
        [(b.edge, b.blocking_red) for b in trace.blockages],
    )


def assert_equivalent(graph, *, strategy="fifo", rng_seed=0, persona=True):
    indexed = reduce_graph(
        graph,
        strategy=strategy,
        rng=random.Random(rng_seed),
        enable_persona_clause=persona,
    )
    reference = reference_reduce(
        graph,
        strategy=strategy,
        rng=random.Random(rng_seed),
        enable_persona_clause=persona,
    )
    assert _trace_key(indexed) == _trace_key(reference)


def _random_graph_with_trust(problem_seed, trust_seed, n_trust, priority, hubby):
    config = RandomProblemConfig(
        n_principals=9,
        n_exchanges=7,
        priority_probability=priority,
        allow_cycles=True,
        hub_probability=0.6 if hubby else 0.0,
    )
    problem = random_problem(config, seed=problem_seed)
    principals = list(problem.interaction.principals)
    rng = random.Random(trust_seed)
    for _ in range(n_trust):
        if len(principals) < 2:
            break
        truster, trustee = rng.sample(principals, 2)
        problem.trust.add(truster, trustee)
    return problem.sequencing_graph()


class TestWorkedExamples:
    """Every paper workload, every strategy, persona on and off."""

    def test_examples_agree(self):
        problems = [
            example1(),
            example2(),
            example2_broker_trusts_source(),
            example2_source_trusts_broker(),
            resale_chain(6),
            star(5),
            oversale(),
            broker_bundle(4, (10.0, 20.0, 30.0, 40.0)),
        ]
        for problem in problems:
            graph = problem.sequencing_graph()
            for strategy in STRATEGIES:
                for persona in (True, False):
                    assert_equivalent(
                        graph, strategy=strategy, rng_seed=17, persona=persona
                    )

    def test_persona_ablation_changes_verdict_identically(self):
        # §4.2.3: with direct trust the persona clause makes example 2
        # feasible; the ablation must flip both engines the same way.
        graph = example2_source_trusts_broker().sequencing_graph()
        with_persona = reduce_graph(graph, enable_persona_clause=True)
        without = reduce_graph(graph, enable_persona_clause=False)
        assert with_persona.feasible and not without.feasible
        assert _trace_key(without) == _trace_key(
            reference_reduce(graph, enable_persona_clause=False)
        )


class TestRandomTopologies:
    @settings(max_examples=60, deadline=None)
    @given(
        problem_seed=st.integers(0, 400),
        trust_seed=st.integers(0, 50),
        n_trust=st.integers(0, 6),
        priority=st.floats(0.0, 1.0),
        hubby=st.booleans(),
        strategy=st.sampled_from(STRATEGIES),
        order_seed=st.integers(0, 1000),
        persona=st.booleans(),
    )
    def test_engines_agree(
        self, problem_seed, trust_seed, n_trust, priority, hubby, strategy, order_seed, persona
    ):
        graph = _random_graph_with_trust(
            problem_seed, trust_seed, n_trust, priority, hubby
        )
        assert_equivalent(
            graph, strategy=strategy, rng_seed=order_seed, persona=persona
        )

    @settings(max_examples=25, deadline=None)
    @given(
        problem_seed=st.integers(0, 200),
        trust_seed=st.integers(0, 50),
        n_trust=st.integers(0, 4),
        walk_seed=st.integers(0, 1000),
    )
    def test_candidate_sets_match_along_any_walk(
        self, problem_seed, trust_seed, n_trust, walk_seed
    ):
        # Stronger than trace equality: at *every* intermediate state along a
        # random applicable-step walk, the worklist engine's candidate list
        # must equal the oracle's full rescan, option for option.
        graph = _random_graph_with_trust(problem_seed, trust_seed, n_trust, 0.7, False)
        indexed = ReductionEngine(graph)
        reference = ReferenceReductionEngine(graph)
        rng = random.Random(walk_seed)
        while True:
            options = reference.applicable()
            assert indexed.applicable() == options
            if not options:
                break
            rule, edge, _ = rng.choice(options)
            reference.apply(rule, edge)
            indexed.apply(rule, edge)
        assert _trace_key(indexed.trace()) == _trace_key(reference.trace())

    @settings(max_examples=20, deadline=None)
    @given(problem_seed=st.integers(0, 200), order_seed=st.integers(0, 1000))
    def test_replay_matches_reference_replay(self, problem_seed, order_seed):
        graph = _random_graph_with_trust(problem_seed, 0, 2, 0.5, True)
        script = [
            (step.rule, step.edge)
            for step in reduce_graph(
                graph, strategy="random", rng=random.Random(order_seed)
            ).steps
        ]
        assert _trace_key(replay(graph, script)) == _trace_key(
            replay_reference(graph, script)
        )
