"""Cross-subsystem property tests: simulator safety, Petri agreement,
spec round-trips, and distributed-reduction equivalence over random inputs.

These are the repository's strongest claims, so they get the widest random
exercise: for *any* generated problem, (a) the synthesized protocol never
harms an honest party whatever single adversary attacks it, (b) the Petri
translation's coverability equals the sequencing verdict, (c) the spec
formatter round-trips losslessly, and (d) the distributed engine agrees with
the centralized one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reduction import reduce_graph
from repro.distributed import distributed_reduce
from repro.petri import exchange_completable
from repro.sim import AdversaryStrategy, evaluate_safety, simulate
from repro.spec import format_problem, load
from repro.workloads import (
    RandomProblemConfig,
    broker_bundle,
    random_problem,
    resale_chain,
)


def _random(seed: int, n_exchanges: int, priority: float):
    config = RandomProblemConfig(
        n_principals=9, n_exchanges=n_exchanges, priority_probability=priority
    )
    return random_problem(config, seed=seed)


@given(
    seed=st.integers(0, 400),
    n_exchanges=st.integers(2, 6),
    priority=st.sampled_from([0.0, 0.4, 0.8]),
)
@settings(max_examples=50, deadline=None)
def test_reduction_sound_wrt_petri_on_random_problems(seed, n_exchanges, priority):
    # One direction only: whatever the reduction certifies feasible, the
    # notify-guarded Petri semantics can execute.  The converse FAILS on
    # ~8% of random instances — the paper's own §4.2.4 caveat ("if the
    # reduced graph does not pass the feasibility test, no determination
    # can be made"); see analysis.feasibility_study.incompleteness_gap.
    problem = _random(seed, n_exchanges, priority)
    if problem.feasibility().feasible:
        assert exchange_completable(problem).coverable


@given(
    seed=st.integers(0, 400),
    n_exchanges=st.integers(2, 6),
    priority=st.sampled_from([0.0, 0.4, 0.8]),
)
@settings(max_examples=50, deadline=None)
def test_distributed_agrees_on_random_problems(seed, n_exchanges, priority):
    problem = _random(seed, n_exchanges, priority)
    graph = problem.sequencing_graph()
    assert distributed_reduce(graph).feasible == reduce_graph(graph).feasible


@given(
    seed=st.integers(0, 400),
    n_exchanges=st.integers(2, 5),
    priority=st.sampled_from([0.0, 0.5]),
)
@settings(max_examples=40, deadline=None)
def test_spec_roundtrip_on_random_problems(seed, n_exchanges, priority):
    problem = _random(seed, n_exchanges, priority)
    recovered = load(format_problem(problem))
    assert [e.label for e in recovered.interaction.edges] == [
        e.label for e in problem.interaction.edges
    ]
    assert {
        (e.principal.name, e.trusted.name)
        for e in recovered.interaction.priority_edges
    } == {
        (e.principal.name, e.trusted.name)
        for e in problem.interaction.priority_edges
    }
    assert recovered.feasibility().feasible == problem.feasibility().feasible


@given(
    seed=st.integers(0, 200),
    n_exchanges=st.integers(2, 5),
    adversary_index=st.integers(0, 20),
    perform=st.integers(0, 3),
)
@settings(max_examples=40, deadline=None)
def test_simulated_safety_on_random_feasible_problems(
    seed, n_exchanges, adversary_index, perform
):
    problem = _random(seed, n_exchanges, priority=0.3)
    if not problem.feasibility().feasible:
        return
    principals = problem.interaction.principals
    cheat = principals[adversary_index % len(principals)]
    result = simulate(
        problem,
        adversaries={cheat.name: AdversaryStrategy(perform=perform)},
        deadline=80.0,
    )
    report = evaluate_safety(problem, result)
    assert report.honest_parties_safe(frozenset({cheat.name})), report.describe()


@given(n=st.integers(0, 5), cheat_index=st.integers(0, 10), perform=st.integers(0, 2))
@settings(max_examples=30, deadline=None)
def test_chain_safety_under_any_single_adversary(n, cheat_index, perform):
    problem = resale_chain(n, retail=200.0)
    principals = problem.interaction.principals
    cheat = principals[cheat_index % len(principals)]
    result = simulate(
        problem,
        adversaries={cheat.name: AdversaryStrategy(perform=perform)},
        deadline=120.0,
    )
    report = evaluate_safety(problem, result)
    assert report.honest_parties_safe(frozenset({cheat.name})), report.describe()


@given(k=st.integers(2, 4), seed=st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_bundle_petri_and_distributed_agree(k, seed):
    prices = tuple(float((seed % 7) + 10 * (i + 1)) for i in range(k))
    problem = broker_bundle(k, prices)
    graph = problem.sequencing_graph()
    central = reduce_graph(graph).feasible
    assert distributed_reduce(graph).feasible == central
    assert exchange_completable(problem).coverable == central
