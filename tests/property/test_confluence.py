"""Property-based tests for §4.2.4's confluence claim.

"Although different graphs may result due to different reduction orders, the
feasibility test will always yield the same result."  The paper asserts this
without proof; here Hypothesis drives the reduction engine through random
orders on random topologies and checks that the verdict never varies.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reduction import ReductionEngine, reduce_graph
from repro.workloads import (
    RandomProblemConfig,
    broker_bundle,
    example1,
    example2,
    random_problem,
    resale_chain,
)


def _random_run(graph, seed: int):
    rng = random.Random(seed)
    engine = ReductionEngine(graph)
    return engine.run(chooser=lambda options: rng.choice(options))


@given(seed_a=st.integers(0, 10_000), seed_b=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_example1_feasible_under_any_order(seed_a, seed_b):
    graph = example1().sequencing_graph()
    assert _random_run(graph, seed_a).feasible
    assert _random_run(graph, seed_b).feasible


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_example2_infeasible_under_any_order(seed):
    graph = example2().sequencing_graph()
    trace = _random_run(graph, seed)
    assert not trace.feasible
    # Stronger than the paper's claim: the *surviving edge set* is also
    # order-independent for this instance.
    assert trace.remaining == reduce_graph(graph).remaining


@given(
    problem_seed=st.integers(0, 500),
    order_seed=st.integers(0, 10_000),
    n_exchanges=st.integers(2, 8),
    priority=st.floats(0.0, 1.0),
)
@settings(max_examples=60, deadline=None)
def test_random_topologies_confluent(problem_seed, order_seed, n_exchanges, priority):
    config = RandomProblemConfig(
        n_principals=9,
        n_exchanges=n_exchanges,
        priority_probability=priority,
        allow_cycles=True,
    )
    problem = random_problem(config, seed=problem_seed)
    graph = problem.sequencing_graph()
    baseline = reduce_graph(graph).feasible
    assert _random_run(graph, order_seed).feasible == baseline


@given(n=st.integers(0, 6), order_seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_chains_always_feasible_any_order(n, order_seed):
    graph = resale_chain(n, retail=100.0).sequencing_graph()
    assert _random_run(graph, order_seed).feasible


@given(k=st.integers(2, 4), order_seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_bundles_never_feasible_any_order(k, order_seed):
    prices = tuple(float(10 * (i + 1)) for i in range(k))
    graph = broker_bundle(k, prices).sequencing_graph()
    assert not _random_run(graph, order_seed).feasible


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_step_count_is_order_independent_for_feasible_graphs(seed):
    # A feasible graph has all |R ∪ B| edges removed in every maximal run.
    graph = example1().sequencing_graph()
    trace = _random_run(graph, seed)
    assert len(trace.steps) == len(graph.edges)
