"""The compiled flat core against the indexed engine, trace for trace.

The flat core compiles a sequencing graph into integer arrays, reduces in a
tight worklist loop, and decompiles back into a
:class:`~repro.core.reduction.ReductionTrace`.  The contract is *identity*,
not mere agreement: over every corpus fixture, every paper workload, and
hundreds of random topologies — across all strategies and with the §4.2.3
persona clause both on and off — the decompiled trace must be value-equal to
``reduce_graph()``'s, the free-order verdict loop must land on the same
(feasible, steps, remaining, blockages) counts, and the packed batch arena
must match the one-graph-at-a-time path.
"""

import glob
import os
import random

import pytest

from repro.conformance.corpus import load_corpus_file
from repro.conformance.oracles import trace_key
from repro.core.flatcore import (
    GraphArena,
    check_feasibility_flat,
    check_feasibility_flat_batch,
    compile_graph,
    reduce_graph_compiled,
    reduce_graph_flat,
)
from repro.core.reduction import reduce_graph
from repro.workloads import (
    RandomProblemConfig,
    broker_bundle,
    example1,
    example2,
    example2_broker_trusts_source,
    example2_source_trusts_broker,
    oversale,
    random_problem,
    resale_chain,
    star,
)

STRATEGIES = ("fifo", "lifo", "random")

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "..", "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))

WORKLOADS = {
    "example1": example1,
    "example2": example2,
    "example2-broker-trusts-source": example2_broker_trusts_source,
    "example2-source-trusts-broker": example2_source_trusts_broker,
    "resale-chain-2": lambda: resale_chain(2),
    "resale-chain-6": lambda: resale_chain(6),
    "insolvent-chain-3": lambda: resale_chain(3, solvent=False),
    "star-3": lambda: star(3),
    "star-5": lambda: star(5),
    "oversale": oversale,
    "bundle-4": lambda: broker_bundle(4, (10.0, 20.0, 30.0, 40.0)),
}


def assert_flat_matches_indexed(graph, *, rng_seed=0):
    """Full equivalence: every strategy, persona on and off, plus verdicts."""
    compiled = compile_graph(graph)
    for persona in (True, False):
        for strategy in STRATEGIES:
            indexed = reduce_graph(
                graph,
                strategy=strategy,
                rng=random.Random(rng_seed),
                enable_persona_clause=persona,
            )
            flat = reduce_graph_compiled(
                compiled,
                strategy=strategy,
                rng=random.Random(rng_seed),
                enable_persona_clause=persona,
            )
            assert trace_key(flat) == trace_key(indexed), (
                f"strategy={strategy} persona={persona}"
            )
        # The free-order verdict loop reaches the same normal form.
        fifo = reduce_graph(graph, enable_persona_clause=persona)
        verdict = check_feasibility_flat(compiled, enable_persona_clause=persona)
        assert (
            verdict.feasible,
            verdict.steps,
            verdict.remaining,
            verdict.blockages,
        ) == (
            fifo.feasible,
            len(fifo.steps),
            len(fifo.remaining),
            len(fifo.blockages),
        ), f"persona={persona}"
    return reduce_graph(graph).feasible


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_corpus_fixtures(path):
    problem = load_corpus_file(path).problem
    assert_flat_matches_indexed(problem.sequencing_graph())


@pytest.mark.parametrize("name", sorted(WORKLOADS), ids=sorted(WORKLOADS))
def test_paper_workloads(name):
    graph = WORKLOADS[name]().sequencing_graph()
    assert_flat_matches_indexed(graph, rng_seed=17)


def test_infeasible_workloads_include_blockages():
    # The blockage diagnosis must survive the decompiler, not just counts.
    for problem in (example2(), resale_chain(3, solvent=False)):
        graph = problem.sequencing_graph()
        indexed = reduce_graph(graph)
        flat = reduce_graph_flat(graph)
        assert not flat.feasible
        assert flat.blockages == indexed.blockages
        assert flat.blockages


def _random_graph(seed):
    config = RandomProblemConfig(
        n_principals=9,
        n_exchanges=7,
        priority_probability=(0.0, 0.25, 0.5, 0.75, 1.0)[seed % 5],
        allow_cycles=True,
        hub_probability=0.6 if seed % 3 == 0 else 0.0,
    )
    problem = random_problem(config, seed=seed)
    rng = random.Random(seed * 31 + 7)
    principals = list(problem.interaction.principals)
    for _ in range(seed % 5):
        if len(principals) < 2:
            break
        truster, trustee = rng.sample(principals, 2)
        problem.trust.add(truster, trustee)
    return problem.sequencing_graph()


@pytest.mark.parametrize("block", range(8))
def test_random_topologies(block):
    # 200 graphs in 8 parametrized blocks of 25: trust edges, priorities,
    # hubs, cycles — every strategy, persona on and off.
    for seed in range(block * 25, (block + 1) * 25):
        assert_flat_matches_indexed(_random_graph(seed), rng_seed=seed)


def test_random_sweep_covers_both_verdicts():
    verdicts = {assert_flat_matches_indexed(_random_graph(s)) for s in range(40)}
    assert verdicts == {True, False}, (
        "the random sweep must exercise feasible AND infeasible graphs"
    )


class TestBatchArena:
    def test_arena_matches_singles(self):
        graphs = [_random_graph(s) for s in range(30)]
        graphs += [w().sequencing_graph() for w in WORKLOADS.values()]
        for persona in (True, False):
            singles = [
                check_feasibility_flat(g, enable_persona_clause=persona)
                for g in graphs
            ]
            batched = check_feasibility_flat_batch(
                graphs, enable_persona_clause=persona
            )
            assert batched == singles

    def test_arena_accepts_precompiled_graphs(self):
        graphs = [_random_graph(s) for s in range(8)]
        arena = GraphArena.from_graphs([compile_graph(g) for g in graphs])
        assert arena.reduce_all() == check_feasibility_flat_batch(graphs)

    def test_empty_batch(self):
        assert check_feasibility_flat_batch([]) == []
