"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    GraphError,
    IndemnityError,
    InfeasibleExchangeError,
    ModelError,
    ProtocolError,
    ReductionError,
    ReproError,
    SimulationError,
    SpecError,
    SpecSemanticError,
    SpecSyntaxError,
)

ALL = [
    ModelError,
    GraphError,
    ReductionError,
    InfeasibleExchangeError,
    IndemnityError,
    SpecError,
    SpecSyntaxError,
    SpecSemanticError,
    SimulationError,
    ProtocolError,
]


class TestHierarchy:
    @pytest.mark.parametrize("exc", ALL)
    def test_everything_is_a_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_spec_errors_nest(self):
        assert issubclass(SpecSyntaxError, SpecError)
        assert issubclass(SpecSemanticError, SpecError)

    def test_one_catch_all(self):
        with pytest.raises(ReproError):
            raise IndemnityError("boom")


class TestSpecErrorPositions:
    def test_line_and_column_rendered(self):
        exc = SpecSyntaxError("bad token", line=3, column=7)
        assert str(exc) == "line 3, column 7: bad token"
        assert exc.line == 3 and exc.column == 7

    def test_line_only(self):
        exc = SpecSemanticError("unknown name", line=5)
        assert str(exc) == "line 5: unknown name"
        assert exc.column is None

    def test_positionless(self):
        exc = SpecError("cannot read file")
        assert str(exc) == "cannot read file"
        assert exc.line is None
