"""Unit tests for the saga baseline (§7.2)."""

import pytest

from repro.baselines.saga import (
    Saga,
    SagaStep,
    acceptable_to_all,
    check_saga_acceptability,
    saga_of_sequence,
)
from repro.core.actions import give, pay
from repro.core.items import document, money
from repro.core.parties import consumer, producer
from repro.core.states import purchase_acceptance
from repro.errors import ProtocolError

C = consumer("c")
P = producer("p")
D = document("d")
M = money(10)
PAY = pay(C, P, M)
DELIVER = give(P, C, D)


def _purchase_saga():
    return Saga([SagaStep.transfer(PAY), SagaStep.transfer(DELIVER)])


class TestForwardExecution:
    def test_commits_when_no_failure(self):
        result = _purchase_saga().run()
        assert result.committed
        assert result.executed == [PAY, DELIVER]
        assert result.compensated == []

    def test_final_state_is_completed_exchange(self):
        state = _purchase_saga().run().final_state()
        assert state.contains([PAY, DELIVER])


class TestCompensation:
    def test_failure_compensates_in_reverse(self):
        saga = Saga(
            [SagaStep.transfer(PAY), SagaStep.transfer(DELIVER)]
        )
        result = saga.run(fails_at=1)
        assert not result.committed
        assert result.executed == [PAY]
        assert result.compensated == [PAY.inverse()]

    def test_failure_at_zero_compensates_nothing(self):
        result = _purchase_saga().run(fails_at=0)
        assert result.executed == []
        assert result.compensated == []

    def test_state_after_compensation_nets_out(self):
        result = _purchase_saga().run(fails_at=1)
        assert result.final_state().net_uncompensated() == frozenset()

    def test_uncompensatable_step_recorded(self):
        saga = Saga([SagaStep(PAY, compensation=None), SagaStep.transfer(DELIVER)])
        result = saga.run(fails_at=1)
        assert result.compensated == []
        assert result.compensations_skipped == [PAY]

    def test_dishonored_compensation_leaves_dirty_state(self):
        # The §7.2 caveat: compensation by a distrusted counterparty is
        # just a promise.  Here the payee refuses to refund.
        saga = _purchase_saga()
        result = saga.run(fails_at=1, compensation_honored=lambda a: False)
        assert result.compensations_skipped == [PAY.inverse()]
        state = result.final_state()
        assert state.contains([PAY])
        assert PAY.inverse() not in state.actions


class TestAcceptabilityBridge:
    def test_committed_saga_acceptable_to_all(self):
        specs = purchase_acceptance(C, P, D, M)
        result, verdicts = check_saga_acceptability(_purchase_saga(), specs)
        assert result.committed
        assert all(verdicts.values())
        assert acceptable_to_all(result.final_state(), specs)

    def test_honored_compensation_acceptable_to_all(self):
        specs = purchase_acceptance(C, P, D, M)
        _, verdicts = check_saga_acceptability(_purchase_saga(), specs, fails_at=1)
        assert all(verdicts.values())

    def test_dishonored_compensation_unacceptable_to_victim(self):
        specs = purchase_acceptance(C, P, D, M)
        _, verdicts = check_saga_acceptability(
            _purchase_saga(),
            specs,
            fails_at=1,
            compensation_honored=lambda a: False,
        )
        assert not verdicts[C]  # paid, no goods, no refund
        assert verdicts[P]

    def test_saga_of_sequence_strips_notifies(self):
        from repro.workloads import example1

        sequence = example1().execution_sequence()
        saga = saga_of_sequence(list(sequence.actions))
        assert len(saga.steps) == 8  # 10 steps minus 2 notifies

    def test_empty_sequence_rejected(self):
        with pytest.raises(ProtocolError):
            saga_of_sequence([])
