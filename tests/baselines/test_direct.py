"""Unit tests for the naive direct-exchange baseline (§1, §8)."""

import pytest

from repro.baselines.direct import (
    direct_exchange,
    direct_message_count,
    mediated_message_count,
    mistrust_overhead,
)
from repro.errors import ModelError


class TestHonestRuns:
    @pytest.mark.parametrize("buyer_first", [True, False])
    def test_both_honest_completes_in_two_messages(self, buyer_first):
        outcome = direct_exchange(buyer_pays_first=buyer_first)
        assert outcome.completed
        assert outcome.messages == 2
        assert outcome.all_ok


class TestDefection:
    def test_seller_keeps_money(self):
        # §1: "If the customer first sends the funds, the publisher might
        # keep them and not provide the document."
        outcome = direct_exchange(seller_honest=False, buyer_pays_first=True)
        assert outcome.buyer_paid and not outcome.buyer_has_good
        assert not outcome.buyer_ok
        assert outcome.seller_ok  # the cheat profits
        assert outcome.messages == 1

    def test_buyer_refuses_to_pay(self):
        # §1: "If the publisher gives the document first, the customer might
        # refuse to pay later."
        outcome = direct_exchange(buyer_honest=False, buyer_pays_first=False)
        assert outcome.seller_delivered and not outcome.seller_has_money
        assert not outcome.seller_ok
        assert outcome.buyer_ok

    def test_first_mover_always_bears_the_risk(self):
        assert not direct_exchange(seller_honest=False, buyer_pays_first=True).buyer_ok
        assert not direct_exchange(buyer_honest=False, buyer_pays_first=False).seller_ok

    def test_second_mover_cheat_never_harmed(self):
        # A dishonest second mover simply keeps what arrived; the honest
        # first mover is the victim in both orders.
        outcome = direct_exchange(seller_honest=False, buyer_pays_first=True)
        assert outcome.seller_ok and not outcome.buyer_ok
        outcome = direct_exchange(buyer_honest=False, buyer_pays_first=False)
        assert outcome.buyer_ok and not outcome.seller_ok

    def test_dishonest_second_mover_with_honest_first(self):
        # Buyer pays first and seller is honest: completion regardless of
        # what the buyer WOULD have done second.
        outcome = direct_exchange(buyer_honest=False, buyer_pays_first=True)
        assert outcome.completed


class TestMessageCounts:
    def test_section8_constants(self):
        assert direct_message_count() == 2
        assert mediated_message_count() == 4
        assert mediated_message_count(include_notifies=True) == 5

    def test_overhead_is_2x(self):
        for n in (1, 3, 10):
            assert mistrust_overhead(n) == 2.0

    def test_overhead_with_notifies(self):
        assert mistrust_overhead(4, include_notifies=True) == 2.5

    def test_zero_exchanges_rejected(self):
        with pytest.raises(ModelError):
            mistrust_overhead(0)


class TestDirectUnderFaults:
    def _plan(self, seed=0, drop=0.5, silent=False):
        from repro.sim.faults import FaultPlan, LinkFault, PartyFault

        parties = (PartyFault("seller", 0.0),) if silent else ()
        return FaultPlan(seed=seed, links=(LinkFault(drop=drop),), parties=parties)

    def test_lossless_plan_completes(self):
        from repro.baselines.direct import direct_exchange_under_faults

        outcome = direct_exchange_under_faults(self._plan(drop=0.0))
        assert outcome.completed and outcome.all_ok

    def test_total_loss_harms_the_buyer(self):
        from repro.baselines.direct import direct_exchange_under_faults

        outcome = direct_exchange_under_faults(self._plan(drop=1.0))
        assert outcome.buyer_paid and not outcome.buyer_has_good
        assert not outcome.buyer_ok

    def test_silent_seller_keeps_money(self):
        from repro.baselines.direct import direct_exchange_under_faults

        outcome = direct_exchange_under_faults(self._plan(drop=0.0, silent=True))
        assert outcome.seller_has_money and not outcome.buyer_has_good
        assert not outcome.buyer_ok

    def test_deterministic_per_seed(self):
        from repro.baselines.direct import direct_exchange_under_faults

        plan = self._plan(seed=12, drop=0.5)
        assert direct_exchange_under_faults(plan) == direct_exchange_under_faults(plan)

    def test_lossy_wire_harms_someone_eventually(self):
        from repro.baselines.direct import direct_exchange_under_faults

        outcomes = [
            direct_exchange_under_faults(self._plan(seed=s, drop=0.3))
            for s in range(40)
        ]
        assert any(not o.all_ok for o in outcomes)
        assert any(o.completed for o in outcomes)
