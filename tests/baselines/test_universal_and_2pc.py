"""Unit tests for the universal-intermediary and 2PC baselines (§7.1, §8)."""

import pytest

from repro.baselines.two_phase_commit import (
    ParticipantBehavior,
    Vote,
    message_count,
    two_phase_commit,
)
from repro.baselines.universal_intermediary import (
    UNIVERSAL,
    rewrite_to_universal,
    universal_exchange,
    universal_message_count,
)
from repro.workloads import example1, example2, figure7, poor_broker


class TestUniversalIntermediary:
    @pytest.mark.parametrize(
        "factory", [example1, example2, poor_broker, figure7], ids=lambda f: f.__name__
    )
    def test_everything_feasible_without_indemnities(self, factory):
        # §8: "any exchange becomes feasible, without indemnities."
        outcome = universal_exchange(factory())
        assert outcome.feasible
        assert outcome.completed

    def test_rewrite_preserves_principals_and_flows(self):
        problem = example2()
        graph = rewrite_to_universal(problem)
        assert {p.name for p in graph.principals} == {
            p.name for p in problem.interaction.principals
        }
        assert graph.trusted_components == (UNIVERSAL,)
        assert len(graph.edges) == len(problem.interaction.edges)
        graph.validate(allow_multiparty=True)

    def test_everyone_receives_counterpart_items(self):
        problem = example2()
        outcome = universal_exchange(problem)
        received = {p.name: items for p, items in outcome.received.items()}
        consumer_items = {str(i) for i in received["Consumer"]}
        assert consumer_items == {"d1", "d2"}
        assert len(received["Source1"]) == 1
        assert received["Source1"][0].is_money

    def test_message_count_is_2E(self):
        problem = figure7()
        outcome = universal_exchange(problem)
        assert outcome.messages == 2 * len(problem.interaction.edges)
        assert universal_message_count(problem) == outcome.messages

    def test_universal_beats_decentralized_on_messages(self):
        from repro.analysis.cost import static_cost

        problem = example2()
        cost = static_cost(problem)
        # Same transfer count here (2 per edge = 4 per exchange), but no
        # notifies and a single point of trust.
        assert cost.universal <= cost.mediated_with_notifies


class TestTwoPhaseCommit:
    def test_all_honest_commits(self):
        outcome = two_phase_commit(example1())
        assert outcome.decision is Vote.COMMIT
        assert outcome.all_safe
        assert len(outcome.performed) == 3

    def test_abort_vote_aborts_everything(self):
        outcome = two_phase_commit(
            example1(), {"Broker": ParticipantBehavior(vote=Vote.ABORT)}
        )
        assert outcome.decision is Vote.ABORT
        assert outcome.performed == frozenset()
        assert outcome.all_safe  # nobody moved, nobody harmed

    def test_commit_then_renege_harms_honest_parties(self):
        # The §7.1 point: 2PC's vote is not an escrow.  The broker votes
        # COMMIT, everyone else performs, the broker keeps what arrives.
        outcome = two_phase_commit(
            example1(), {"Broker": ParticipantBehavior(performs=False)}
        )
        assert outcome.decision is Vote.COMMIT
        harmed = {p.name for p in outcome.harmed}
        assert harmed == {"Consumer", "Producer"}
        assert not outcome.all_safe

    def test_sequencing_protocol_protects_where_2pc_fails(self):
        # Contrast on identical misbehaviour: simulator says all honest
        # parties safe, 2PC says two of them harmed.
        from repro.sim import evaluate_safety, simulate, withholder

        problem = example1()
        sim_result = simulate(problem, adversaries={"Broker": withholder(0)}, deadline=60.0)
        assert evaluate_safety(problem, sim_result).honest_parties_safe(
            frozenset({"Broker"})
        )
        tpc = two_phase_commit(problem, {"Broker": ParticipantBehavior(performs=False)})
        assert not tpc.all_safe

    def test_message_counts(self):
        assert message_count(3) == 12
        outcome = two_phase_commit(example1())
        # 4n control + one transfer per performed edge.
        assert outcome.messages == 12 + 4

    def test_abort_costs_only_control_messages(self):
        outcome = two_phase_commit(
            example1(), {"Consumer": ParticipantBehavior(vote=Vote.ABORT)}
        )
        assert outcome.messages == 12
