"""Fixture: exactly one DET002 violation (set iteration in a payload sink).

``*_payload`` names are serialization sinks since the flatcore bench
artifact builders (:mod:`repro.core.flatcore.report`) adopted the suffix —
hash order must never leak into ``BENCH_flatcore.json``.
"""


def bench_payload(sizes: list[int]) -> dict[str, list[int]]:
    """Deduplicating through a set and emitting it unsorted leaks hash order."""
    seen = set(sizes)
    rows = [size * 2 for size in seen]  # DET002 expected here
    return {"rows": rows}


def safe_payload(sizes: list[int]) -> dict[str, list[int]]:
    """The sanctioned form: an explicit sorted(...) wrapper."""
    return {"rows": [size * 2 for size in sorted(set(sizes))]}
