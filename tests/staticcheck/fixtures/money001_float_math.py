"""Fixture: exactly one MONEY001 violation (float math on a cents amount)."""


def surcharge(amount_cents: int) -> float:
    """Ledger arithmetic must stay in integer cents."""
    return amount_cents * 1.05  # MONEY001 expected here


def total_dollars(amount_cents: int) -> float:
    """Display conversion in a *dollar* helper is exempt."""
    return amount_cents / 100


def describe(amount_cents: int) -> str:
    """Display conversion inside an f-string is exempt."""
    return f"${amount_cents / 100:.2f}"
