"""Deliberate OBS001 violation: a span opened imperatively, never closed.

If the comprehension below raised, the span would stay open forever; the
context-manager form ``with tracer.span(...)`` closes it on every path and
is the only form allowed outside ``repro.obs``.
"""

from repro.obs.runtime import active


def reduce_with_trace(edges):
    tracer = active()
    if tracer is None:
        return [e for e in edges if e]
    span_id = tracer.start_span("reduce.custom")  # expected here OBS001
    survivors = [e for e in edges if e]
    tracer.set_attr(span_id, "survivors", len(survivors))
    return survivors
