"""Fixture: NET001 — log-then-act discipline, one deliberate violation.

``send_logged`` shows the discipline (WAL append dominates the frame);
``send_unlogged`` ships an act frame on a path with no preceding append.
"""


class Node:
    def __init__(self, wal, writer):
        self.wal = wal
        self.writer = writer

    def send_logged(self, key):
        self.wal.append({"kind": "send", "key": key})
        self.writer.write({"type": "act", "key": key})

    def send_unlogged(self, key):
        if key:
            self.writer.write({"type": "act", "key": key})  # NET001 expected here
