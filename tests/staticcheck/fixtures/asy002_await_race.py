"""Fixture: ASY002 — read-modify-write torn across an await, one violation.

``deposit_torn`` reads the balance, suspends, then writes back the stale
value: two concurrent deposits can lose one update (the dynamic test in
``test_flow.py`` demonstrates the interleaving for real).  ``deposit_atomic``
does the read-modify-write after the suspension, in one uninterrupted step.
"""


import asyncio


async def audit(amount):
    await asyncio.sleep(0)  # a real suspension point: control returns to the loop
    return amount


class Account:
    def __init__(self):
        self.balance_units = 0

    async def deposit_torn(self, amount):
        held = self.balance_units
        await audit(amount)
        self.balance_units = held + amount  # ASY002 expected here

    async def deposit_atomic(self, amount):
        await audit(amount)
        self.balance_units = self.balance_units + amount
