"""Fixture: exactly one DET001 violation (wall-clock read in core/)."""

import random
import time

RNG = random.Random(7)  # seeded: sanctioned, never flagged


def event_timestamp() -> float:
    """Reading the wall clock makes replay observe a different value."""
    return time.time()  # DET001 expected here


def sanctioned_draw() -> float:
    """Seeded instance randomness is the approved pattern."""
    return RNG.random()
