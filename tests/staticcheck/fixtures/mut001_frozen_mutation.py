"""Fixture: exactly one MUT001 violation (frozen mutation outside owner)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Sealed:
    value: int

    def _rehash(self) -> None:
        object.__setattr__(self, "_hash", 7)  # self target: allowed


def corrupt(instance: Sealed) -> None:
    """Reaching into a frozen instance from outside its methods."""
    object.__setattr__(instance, "value", 99)  # MUT001 expected here
