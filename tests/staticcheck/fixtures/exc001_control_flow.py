"""Fixture: exactly one EXC001 violation (bare except as control flow)."""


def parse_or_default(text: str) -> int:
    try:
        return int(text)
    except:  # EXC001 expected here
        return 0


def narrow_is_fine(text: str) -> int:
    try:
        return int(text)
    except ValueError:
        return 0
