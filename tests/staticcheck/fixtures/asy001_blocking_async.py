"""Fixture: ASY001 — blocking call on the event loop, one violation.

``poll_ready`` parks the whole loop in ``time.sleep``; the cooperative
variant yields with ``asyncio.sleep`` and is clean.
"""

import asyncio
import time


async def poll_ready(flag):
    while not flag.is_set():
        time.sleep(0.05)  # ASY001 expected here


async def poll_ready_cooperatively(flag):
    while not flag.is_set():
        await asyncio.sleep(0.05)
