"""Fixture: LEDG001 — an exception path that keeps the debit, skips the
credit.

``settle_lossy``'s handler swallows the audit failure after the payer was
debited but before the payee was credited — custody leaks.  ``settle_safe``
credits the money back to the payer in its handler, conserving custody on
every path.
"""


class AuditError(Exception):
    pass


def settle_lossy(ledger, payer, payee, amount, audit):
    ledger.debit(payer, amount)
    try:
        audit(payer, payee, amount)
        ledger.credit(payee, amount)
    except AuditError:  # LEDG001 expected here
        return None
    return amount


def settle_safe(ledger, payer, payee, amount, audit):
    ledger.debit(payer, amount)
    try:
        audit(payer, payee, amount)
        ledger.credit(payee, amount)
    except AuditError:
        ledger.credit(payer, amount)
    return amount
