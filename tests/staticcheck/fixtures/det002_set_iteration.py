"""Fixture: exactly one DET002 violation (set iteration in a digest sink)."""


def digest(labels: list[str]) -> str:
    """Iterating the deduplicated set leaks hash order into the digest."""
    unique = set(labels)
    parts = [item.upper() for item in unique]  # DET002 expected here
    return "|".join(parts)


def safe_digest(labels: list[str]) -> str:
    """The sanctioned form: an explicit sorted(...) wrapper."""
    return "|".join(sorted(set(labels)))
