"""Engine plumbing: path expansion, parse failures, reporters."""

from __future__ import annotations

import json

import pytest

from repro.errors import StaticCheckError
from repro.staticcheck import (
    PARSE_RULE,
    Finding,
    Severity,
    expand_paths,
    lint_paths,
    render_human,
    render_json,
)


class TestExpandPaths:
    def test_missing_path_is_a_usage_error(self):
        with pytest.raises(StaticCheckError, match="no such file"):
            expand_paths(["does/not/exist"])

    def test_directory_expansion_is_sorted_and_skips_pycache(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n", encoding="utf-8")
        (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-311.py").write_text("x = 1\n", encoding="utf-8")
        names = [p.name for p in expand_paths([str(tmp_path)])]
        assert names == ["a.py", "b.py"]

    def test_duplicate_paths_deduplicated(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("x = 1\n", encoding="utf-8")
        assert len(expand_paths([str(target), str(target)])) == 1


class TestUnknownRule:
    def test_unknown_select_is_a_usage_error(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
        with pytest.raises(StaticCheckError, match="unknown rule"):
            lint_paths([str(tmp_path)], select=("NOPE999",))


class TestParseFailure:
    def test_unparseable_file_reports_parse_rule(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n", encoding="utf-8")
        findings = lint_paths([str(bad)])
        assert [f.rule for f in findings] == [PARSE_RULE]
        assert findings[0].severity is Severity.ERROR


class TestReporters:
    def _findings(self):
        return [
            Finding("a.py", 3, 1, "DET001", "boom", suggestion="seed it"),
            Finding(
                "b.exchange", 1, 1, "SPECW002", "inert",
                severity=Severity.WARNING,
            ),
        ]

    def test_human_lines_and_summary(self):
        lines = render_human(self._findings(), fix_suggestions=True)
        assert lines[0] == "a.py:3:1: error DET001 boom"
        assert lines[1] == "    fix: seed it"
        assert lines[2] == "b.exchange:1:1: warning SPECW002 inert"
        assert lines[-1] == "1 error(s), 1 warning(s)"

    def test_human_clean_summary(self):
        assert render_human([]) == ["clean: no findings"]

    def test_json_counts_and_shape(self):
        payload = json.loads(render_json(self._findings()))
        assert payload["count"] == 2
        assert payload["errors"] == 1
        assert payload["warnings"] == 1
        assert payload["findings"][0]["rule"] == "DET001"
        assert payload["findings"][1]["severity"] == "warning"

    def test_json_is_deterministic(self):
        assert render_json(self._findings()) == render_json(self._findings())
