"""Self-test harness for the lint rules.

Each fixture under ``fixtures/`` contains exactly one deliberate violation,
marked by an ``expected here`` comment.  The parametrized test asserts the
rule fires exactly on that line — and nowhere in ``src/`` (the acceptance
bar: ``repro lint src`` is clean at HEAD).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.staticcheck import (
    FileContext,
    Severity,
    default_rules,
    lint_paths,
    lint_python_source,
    self_check,
)

FIXTURES = Path(__file__).parent / "fixtures"
SRC = str(Path(__file__).parents[2] / "src")

RULE_FIXTURES = {
    "DET001": FIXTURES / "core" / "det001_wall_clock.py",
    "DET002": FIXTURES / "det002_set_iteration.py",
    "MUT001": FIXTURES / "mut001_frozen_mutation.py",
    "MONEY001": FIXTURES / "money001_float_math.py",
    "EXC001": FIXTURES / "exc001_control_flow.py",
    "OBS001": FIXTURES / "obs001_span_discipline.py",
    # Flow-sensitive rules (DESIGN.md §14); NET001 lives under net/ to
    # satisfy its package gate.
    "NET001": FIXTURES / "net" / "net001_log_then_act.py",
    "ASY001": FIXTURES / "asy001_blocking_async.py",
    "ASY002": FIXTURES / "asy002_await_race.py",
    "LEDG001": FIXTURES / "ledg001_exception_skew.py",
}

# DET002's sink inference also covers ``*payload*`` names (the flatcore
# bench-artifact builders); a second fixture pins that extension.
PAYLOAD_FIXTURE = FIXTURES / "det002_payload_sink.py"


def expected_line(fixture: Path, code: str) -> int:
    """The 1-based line carrying the deliberate violation marker."""
    for lineno, text in enumerate(
        fixture.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if "expected here" in text and code in text:
            return lineno
    raise AssertionError(f"{fixture} has no marked violation for {code}")


class TestEveryRuleFires:
    @pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
    def test_rule_fires_exactly_at_marker(self, code):
        fixture = RULE_FIXTURES[code]
        findings = lint_paths([str(fixture)])
        assert [f.rule for f in findings] == [code]
        assert findings[0].line == expected_line(fixture, code)
        assert findings[0].severity is Severity.ERROR
        assert findings[0].suggestion  # --fix-suggestions has content

    @pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
    def test_rule_fires_nowhere_in_src(self, code):
        findings = lint_paths([SRC], select=(code,))
        assert findings == []

    def test_whole_fixture_tree_yields_one_finding_per_rule(self):
        findings = lint_paths([str(FIXTURES)])
        expected = sorted(list(RULE_FIXTURES) + ["DET002"])  # + payload fixture
        assert sorted(f.rule for f in findings) == expected

    def test_payload_sink_fixture_fires_exactly_once(self):
        findings = lint_paths([str(PAYLOAD_FIXTURE)])
        assert [f.rule for f in findings] == ["DET002"]
        assert findings[0].line == expected_line(PAYLOAD_FIXTURE, "DET002")
        assert findings[0].severity is Severity.ERROR

    def test_src_is_clean_at_head(self):
        assert lint_paths([SRC]) == []


class TestSuppression:
    def test_line_noqa_silences_the_named_rule(self):
        fixture = RULE_FIXTURES["DET002"]
        source = fixture.read_text(encoding="utf-8")
        line = expected_line(fixture, "DET002")
        lines = source.splitlines()
        lines[line - 1] += "  # repro: noqa[DET002]"
        assert lint_python_source(str(fixture), "\n".join(lines), default_rules()) == []

    def test_bare_noqa_silences_everything(self):
        fixture = RULE_FIXTURES["MUT001"]
        source = fixture.read_text(encoding="utf-8")
        line = expected_line(fixture, "MUT001")
        lines = source.splitlines()
        lines[line - 1] += "  # repro: noqa"
        assert lint_python_source(str(fixture), "\n".join(lines), default_rules()) == []

    def test_noqa_for_a_different_rule_does_not_silence(self):
        fixture = RULE_FIXTURES["EXC001"]
        source = fixture.read_text(encoding="utf-8")
        line = expected_line(fixture, "EXC001")
        lines = source.splitlines()
        lines[line - 1] += "  # repro: noqa[DET001]"
        findings = lint_python_source(str(fixture), "\n".join(lines), default_rules())
        assert [f.rule for f in findings] == ["EXC001"]


class TestRuleHeuristics:
    def test_det001_gated_to_deterministic_packages(self, tmp_path):
        source = "import time\n\ndef stamp():\n    return time.time()\n"
        elsewhere = tmp_path / "analysis" / "timing.py"
        elsewhere.parent.mkdir()
        elsewhere.write_text(source, encoding="utf-8")
        assert lint_paths([str(elsewhere)]) == []
        gated = tmp_path / "sim" / "timing.py"
        gated.parent.mkdir()
        gated.write_text(source, encoding="utf-8")
        assert [f.rule for f in lint_paths([str(gated)])] == ["DET001"]

    def test_det001_sees_through_import_aliases(self):
        source = "import random as rnd\n\ndef draw():\n    return rnd.choice([1, 2])\n"
        findings = lint_python_source("core/x.py", source, default_rules())
        assert [f.rule for f in findings] == ["DET001"]

    def test_det001_sees_from_imports(self):
        source = "from random import shuffle\n\ndef mix(xs):\n    shuffle(xs)\n"
        findings = lint_python_source("core/x.py", source, default_rules())
        assert [f.rule for f in findings] == ["DET001"]

    def test_det001_allows_seeded_random(self):
        source = (
            "import random\n\ndef draw(seed):\n"
            "    return random.Random(seed).random()\n"
        )
        assert lint_python_source("core/x.py", source, default_rules()) == []

    def test_det002_sorted_wrapper_is_clean(self):
        source = (
            "def digest(xs):\n"
            "    return '|'.join(sorted(set(xs)))\n"
        )
        assert lint_python_source("m.py", source, default_rules()) == []

    def test_det002_order_insensitive_consumers_are_clean(self):
        source = (
            "def describe(xs):\n"
            "    unique = set(xs)\n"
            "    return max(len(x) for x in unique)\n"
        )
        assert lint_python_source("m.py", source, default_rules()) == []

    def test_det002_ignores_non_sink_functions(self):
        source = (
            "def churn(xs):\n"
            "    for x in set(xs):\n"
            "        print(x)\n"
        )
        assert lint_python_source("m.py", source, default_rules()) == []

    def test_det002_viz_module_is_all_sink(self):
        source = (
            "def helper(xs):\n"
            "    return [x for x in set(xs)]\n"
        )
        findings = lint_python_source("viz/m.py", source, default_rules())
        assert [f.rule for f in findings] == ["DET002"]

    def test_det002_set_union_tracked(self):
        source = (
            "def to_dict(a, b):\n"
            "    merged = set(a) | set(b)\n"
            "    return {x: 1 for x in merged}\n"
        )
        findings = lint_python_source("m.py", source, default_rules())
        assert [f.rule for f in findings] == ["DET002"]

    def test_money001_exempts_fstring_and_dollar_helpers(self):
        fixture = RULE_FIXTURES["MONEY001"]
        findings = lint_paths([str(fixture)])
        assert len(findings) == 1  # only the marked line, not the two exempts

    def test_exc001_catches_assertion_error_handler(self):
        source = (
            "def probe(x):\n"
            "    try:\n"
            "        assert x\n"
            "    except AssertionError:\n"
            "        return False\n"
            "    return True\n"
        )
        findings = lint_python_source("m.py", source, default_rules())
        assert [f.rule for f in findings] == ["EXC001"]

    def test_exc001_flags_swallowed_broad_exception(self):
        source = (
            "def run(job):\n"
            "    try:\n"
            "        job()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        findings = lint_python_source("m.py", source, default_rules())
        assert [f.rule for f in findings] == ["EXC001"]

    def test_mut001_allows_self_mutation(self):
        source = (
            "class C:\n"
            "    def _cache(self, v):\n"
            "        object.__setattr__(self, '_h', v)\n"
        )
        assert lint_python_source("m.py", source, default_rules()) == []

    def test_obs001_context_manager_form_is_clean(self):
        source = (
            "def traced(tracer, edges):\n"
            "    with tracer.span('reduce', {'edges': len(edges)}) as span_id:\n"
            "        tracer.set_attr(span_id, 'ok', True)\n"
        )
        assert lint_python_source("m.py", source, default_rules()) == []

    def test_obs001_flags_span_outside_with(self):
        source = (
            "def traced(tracer):\n"
            "    ctx = tracer.span('reduce')\n"
            "    ctx.__enter__()\n"
        )
        findings = lint_python_source("m.py", source, default_rules())
        assert [f.rule for f in findings] == ["OBS001"]

    def test_obs001_exempts_the_obs_package(self):
        source = (
            "class Tracer:\n"
            "    def deliver(self, span_id):\n"
            "        self.end_span(span_id)\n"
        )
        assert lint_python_source("obs/messages.py", source, default_rules()) == []
        findings = lint_python_source("sim/messages.py", source, default_rules())
        assert [f.rule for f in findings] == ["OBS001"]


class TestRegistry:
    def test_self_check_passes(self):
        self_check()

    def test_every_documented_rule_registered(self):
        codes = {rule.code for rule in default_rules()}
        assert codes == {
            "DET001",
            "DET002",
            "MUT001",
            "MONEY001",
            "EXC001",
            "OBS001",
            "NET001",
            "ASY001",
            "ASY002",
            "LEDG001",
        }

    def test_resolve_call_handles_dotted_chains(self):
        ctx = FileContext.build(
            "m.py", "import datetime\n\nx = datetime.datetime.now()\n"
        )
        import ast

        call = next(n for n in ast.walk(ctx.tree) if isinstance(n, ast.Call))
        assert ctx.resolve_call(call) == ("datetime", "datetime", "now")
