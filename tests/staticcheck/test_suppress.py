"""Edge cases of the noqa suppression layer (DESIGN.md §10/§14).

Covers the continuation-line widening for multi-line simple statements,
multiple rule codes in one marker, and the NOQA001 warning for unknown
codes (a typo'd waiver must not pass silently).
"""

from __future__ import annotations

import ast

from repro.staticcheck import Severity, default_rules, lint_python_source
from repro.staticcheck.suppress import (
    expand_over_statements,
    is_suppressed,
    suppressed_rules,
)


class TestMarkerParsing:
    def test_multiple_codes_in_one_comment(self):
        table = suppressed_rules("x = 1  # repro: noqa[DET001, MONEY001]\n")
        assert table == {1: frozenset({"DET001", "MONEY001"})}

    def test_codes_are_case_normalized(self):
        table = suppressed_rules("x = 1  # repro: noqa[det001]\n")
        assert is_suppressed(table, 1, "DET001")

    def test_bare_form_suppresses_everything(self):
        table = suppressed_rules("x = 1  # repro: noqa\n")
        assert table == {1: None}
        assert is_suppressed(table, 1, "ANYTHING")

    def test_empty_bracket_degrades_to_bare(self):
        table = suppressed_rules("x = 1  # repro: noqa[ , ]\n")
        assert table == {1: None}


class TestContinuationLineWidening:
    SOURCE = (
        "result = transform(\n"
        "    payload,\n"
        "    retries=3,  # repro: noqa[DET001]\n"
        ")\n"
    )

    def _widened(self, source: str):
        return expand_over_statements(suppressed_rules(source), ast.parse(source))

    def test_marker_on_a_continuation_line_covers_the_statement(self):
        table = self._widened(self.SOURCE)
        # Findings anchor at the statement's first line; the marker sits on
        # the only line with room for it.
        assert all(is_suppressed(table, line, "DET001") for line in (1, 2, 3, 4))

    def test_widening_does_not_leak_past_the_statement(self):
        table = self._widened(self.SOURCE + "other = 1\n")
        assert not is_suppressed(table, 5, "DET001")

    def test_markers_on_two_lines_of_one_statement_merge(self):
        source = (
            "result = transform(  # repro: noqa[DET001]\n"
            "    payload,  # repro: noqa[MONEY001]\n"
            ")\n"
        )
        table = self._widened(source)
        assert is_suppressed(table, 1, "MONEY001")
        assert is_suppressed(table, 2, "DET001")

    def test_bare_marker_wins_over_codes(self):
        source = (
            "result = transform(  # repro: noqa[DET001]\n"
            "    payload,  # repro: noqa\n"
            ")\n"
        )
        table = self._widened(source)
        assert is_suppressed(table, 1, "ANYTHING")

    def test_compound_header_marker_does_not_blanket_the_body(self):
        source = (
            "if flag:  # repro: noqa[DET001]\n"
            "    risky()\n"
        )
        table = self._widened(source)
        assert is_suppressed(table, 1, "DET001")
        assert not is_suppressed(table, 2, "DET001")

    def test_widened_suppression_silences_a_real_finding(self):
        # The DET001 call sits on line 3; the marker on the closing paren.
        source = (
            "import time\n"
            "\n"
            "stamp = time.time(\n"
            ")  # repro: noqa[DET001]\n"
        )
        assert lint_python_source("core/x.py", source, default_rules()) == []


class TestUnknownCodes:
    def test_unknown_code_warns_instead_of_passing_silently(self):
        findings = lint_python_source(
            "m.py", "x = 1  # repro: noqa[DET01]\n", default_rules()
        )
        assert [f.rule for f in findings] == ["NOQA001"]
        assert findings[0].severity is Severity.WARNING
        assert "DET01" in findings[0].message

    def test_known_codes_do_not_warn(self):
        findings = lint_python_source(
            "m.py", "x = 1  # repro: noqa[DET001, NET001]\n", default_rules()
        )
        assert findings == []

    def test_mixed_marker_warns_only_for_the_unknown_code(self):
        findings = lint_python_source(
            "m.py", "x = 1  # repro: noqa[DET001, BOGUS9]\n", default_rules()
        )
        assert [f.rule for f in findings] == ["NOQA001"]
        assert "BOGUS9" in findings[0].message
        assert "DET001" not in findings[0].message

    def test_bare_marker_names_nothing_to_validate(self):
        findings = lint_python_source(
            "m.py", "x = 1  # repro: noqa\n", default_rules()
        )
        assert findings == []

    def test_warning_does_not_gate_the_exit_code(self):
        from repro.staticcheck import error_count

        findings = lint_python_source(
            "m.py", "x = 1  # repro: noqa[BOGUS9]\n", default_rules()
        )
        assert error_count(findings) == 0
