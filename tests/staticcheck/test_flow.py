"""Unit tests for the flow engine (CFG, dominance, dataflow, call graph) —
plus a dynamic demonstration that the ASY002 fixture's torn update loses
real money under real task interleaving.
"""

from __future__ import annotations

import ast
import asyncio
import importlib.util
from pathlib import Path

import pytest

from repro.staticcheck import FileContext
from repro.staticcheck.flow import (
    DominatorInfo,
    ModuleCallGraph,
    build_cfg,
    contains_await,
    find_torn_updates,
    reaching_definitions,
    statement_awaits,
)

FIXTURES = Path(__file__).parent / "fixtures"


def _first_function(source: str):
    """Parse *source* and return (func node, parents map) of its first def."""
    ctx = FileContext.build("<test>", source)
    func = next(
        node
        for node in ast.walk(ctx.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return func, ctx


class TestCfgConstruction:
    def test_linear_body_is_one_block(self):
        func, _ = _first_function(
            "def f(x):\n"
            "    a = x + 1\n"
            "    b = a * 2\n"
            "    return b\n"
        )
        cfg = build_cfg(func)
        placed = {site[0] for site in cfg.sites.values()}
        assert placed == {cfg.entry}
        # Sites are ordered within the block.
        assert sorted(cfg.sites.values()) == [(cfg.entry, i) for i in range(3)]
        assert cfg.exit in cfg.blocks[cfg.entry].successors

    def test_if_else_makes_a_diamond(self):
        func, _ = _first_function(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        cfg = build_cfg(func)
        head = cfg.sites[func.body[0]][0]
        assert len(cfg.blocks[head].successors) == 2
        then_block = cfg.sites[func.body[0].body[0]][0]
        else_block = cfg.sites[func.body[0].orelse[0]][0]
        join = cfg.sites[func.body[1]][0]
        assert cfg.blocks[then_block].successors == {join}
        assert cfg.blocks[else_block].successors == {join}

    def test_while_break_exits_to_after(self):
        func, _ = _first_function(
            "def f(xs):\n"
            "    while True:\n"
            "        if not xs:\n"
            "            break\n"
            "        xs.pop()\n"
            "    return xs\n"
        )
        cfg = build_cfg(func)
        loop = func.body[0]
        break_stmt = loop.body[0].body[0]
        after = cfg.sites[func.body[1]][0]
        assert after in cfg.blocks[cfg.sites[break_stmt][0]].successors

    def test_try_body_has_exception_edges_to_handler(self):
        func, _ = _first_function(
            "def f(job):\n"
            "    try:\n"
            "        a = job()\n"
            "        b = a + 1\n"
            "    except ValueError:\n"
            "        b = 0\n"
            "    return b\n"
        )
        cfg = build_cfg(func)
        try_stmt = func.body[0]
        body_block = cfg.sites[try_stmt.body[0]][0]
        handler_block = cfg.sites[try_stmt.handlers[0].body[0]][0]
        assert (body_block, handler_block) in cfg.exception_edges
        assert cfg.handler_entries[handler_block] is try_stmt.handlers[0]

    def test_return_terminates_the_path(self):
        func, _ = _first_function(
            "def f(x):\n"
            "    if x:\n"
            "        return 1\n"
            "    return 2\n"
        )
        cfg = build_cfg(func)
        ret1 = cfg.sites[func.body[0].body[0]][0]
        assert cfg.blocks[ret1].successors == {cfg.exit}

    def test_site_of_resolves_nested_expressions(self):
        func, ctx = _first_function(
            "def f(x):\n"
            "    return max(x, 0)\n"
        )
        cfg = build_cfg(func)
        call = next(n for n in ast.walk(func) if isinstance(n, ast.Call))
        assert cfg.site_of(call, ctx.parents) == cfg.sites[func.body[0]]

    def test_nested_defs_are_single_statements(self):
        func, _ = _first_function(
            "def f(x):\n"
            "    def g():\n"
            "        return x + 1\n"
            "    return g\n"
        )
        cfg = build_cfg(func)
        inner_return = func.body[0].body[0]
        assert inner_return not in cfg.sites  # runs in another frame


class TestAwaitHelpers:
    def test_contains_await_sees_direct_awaits_only(self):
        func, _ = _first_function(
            "async def f():\n"
            "    await g()\n"
            "    async def inner():\n"
            "        await h()\n"
        )
        assert contains_await(func.body[0])
        assert not contains_await(func.body[1])  # nested frame's await

    def test_statement_awaits_checks_compound_heads_only(self):
        func, _ = _first_function(
            "async def f(xs):\n"
            "    if await ready():\n"
            "        pass\n"
            "    while xs:\n"
            "        await step()\n"
        )
        assert statement_awaits(func.body[0])  # await in the test
        assert not statement_awaits(func.body[1])  # body awaits, head doesn't


class TestDominance:
    def test_diamond_head_dominates_join_branches_do_not(self):
        func, _ = _first_function(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        cfg = build_cfg(func)
        doms = DominatorInfo.build(cfg)
        head = cfg.sites[func.body[0]][0]
        then_block = cfg.sites[func.body[0].body[0]][0]
        join = cfg.sites[func.body[1]][0]
        assert doms.block_dominates(head, join)
        assert not doms.block_dominates(then_block, join)

    def test_same_block_order_is_strict(self):
        func, _ = _first_function(
            "def f(x):\n"
            "    a = 1\n"
            "    b = 2\n"
        )
        cfg = build_cfg(func)
        doms = DominatorInfo.build(cfg)
        site_a = cfg.sites[func.body[0]]
        site_b = cfg.sites[func.body[1]]
        assert doms.site_dominates(site_a, site_b)
        assert not doms.site_dominates(site_b, site_a)
        assert not doms.site_dominates(site_a, site_a)

    def test_dead_code_is_vacuously_dominated(self):
        func, ctx = _first_function(
            "def f(x):\n"
            "    return x\n"
            "    send({'type': 'act'})\n"
        )
        cfg = build_cfg(func)
        doms = DominatorInfo.build(cfg)
        dead = cfg.sites[func.body[1]]
        live = cfg.sites[func.body[0]]
        # The dead statement never executes, so every site "dominates" it —
        # dead sends can't produce undominated-effect findings.
        assert doms.site_dominates(live, dead)


class TestReachingDefinitions:
    def test_branch_definitions_merge_at_join(self):
        func, _ = _first_function(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        cfg = build_cfg(func)
        reaching = reaching_definitions(cfg)
        join = cfg.sites[func.body[1]][0]
        lines = {d.line for d in reaching[join] if d.name == "a"}
        assert lines == {3, 5}

    def test_redefinition_kills_upstream_definition(self):
        func, _ = _first_function(
            "def f(x):\n"
            "    a = 1\n"
            "    a = 2\n"
            "    return a\n"
        )
        cfg = build_cfg(func)
        reaching = reaching_definitions(cfg)
        at_exit = reaching[cfg.exit]
        lines = {d.line for d in at_exit if d.name == "a"}
        assert lines == {3}


class TestCallGraph:
    def test_async_reachable_builds_chains(self):
        ctx = FileContext.build(
            "m.py",
            "async def top():\n"
            "    middle()\n"
            "\n"
            "def middle():\n"
            "    bottom()\n"
            "\n"
            "def bottom():\n"
            "    pass\n",
        )
        graph = ModuleCallGraph.build(ctx)
        reached = {f.name: chain for f, chain in graph.async_reachable().items()}
        assert reached == {
            "middle": ("top", "middle"),
            "bottom": ("top", "middle", "bottom"),
        }

    def test_parameters_shadow_module_functions(self):
        ctx = FileContext.build(
            "m.py",
            "def helper():\n"
            "    pass\n"
            "\n"
            "async def run(helper):\n"
            "    helper()\n",
        )
        graph = ModuleCallGraph.build(ctx)
        # The call inside run binds to the *parameter*, not the module def.
        assert graph.async_reachable() == {}

    def test_unknown_names_resolve_to_nothing(self):
        ctx = FileContext.build("m.py", "def f():\n    outside()\n")
        graph = ModuleCallGraph.build(ctx)
        assert graph.sites_calling("outside") == []


class TestTornUpdateAnalysis:
    def _torn(self, source: str):
        func, _ = _first_function(source)
        return find_torn_updates(build_cfg(func))

    def test_read_await_writeback_is_torn(self):
        torn = self._torn(
            "async def f(self, n):\n"
            "    held = self.total\n"
            "    await pause()\n"
            "    self.total = held + n\n"
        )
        assert [(t.attr, t.read_line) for t in torn] == [("total", 2)]

    def test_fresh_read_after_await_is_clean(self):
        assert self._torn(
            "async def f(self, n):\n"
            "    await pause()\n"
            "    held = self.total\n"
            "    self.total = held + n\n"
        ) == []

    def test_augassign_with_await_in_value_is_torn(self):
        torn = self._torn(
            "async def f(self, n):\n"
            "    self.total += await price(n)\n"
        )
        assert [t.attr for t in torn] == ["total"]

    def test_inline_read_with_await_in_same_statement_is_torn(self):
        torn = self._torn(
            "async def f(self, n):\n"
            "    self.total = self.total + await price(n)\n"
        )
        assert [t.attr for t in torn] == ["total"]

    def test_taint_flows_through_loops(self):
        torn = self._torn(
            "async def f(self, items):\n"
            "    held = self.total\n"
            "    for item in items:\n"
            "        await push(item)\n"
            "    self.total = held + 1\n"
        )
        assert [t.attr for t in torn] == ["total"]

    def test_write_to_a_different_attribute_is_clean(self):
        # Staleness only matters when the stale read feeds the SAME
        # attribute back — writing old total into another field is not a
        # lost update of that field.
        assert self._torn(
            "async def f(self, n):\n"
            "    held = self.total\n"
            "    await pause()\n"
            "    self.other = held + n\n"
        ) == []

    def test_no_await_no_finding(self):
        assert self._torn(
            "async def f(self, n):\n"
            "    held = self.total\n"
            "    self.total = held + n\n"
        ) == []


class TestLostUpdateIsReal:
    """Run the ASY002 fixture for real: the flagged method loses an update
    under genuine task interleaving; the clean variant does not."""

    @pytest.fixture()
    def account_module(self):
        path = FIXTURES / "asy002_await_race.py"
        spec = importlib.util.spec_from_file_location("asy002_fixture", path)
        assert spec is not None and spec.loader is not None
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_torn_deposit_loses_an_update(self, account_module):
        account = account_module.Account()

        async def scenario():
            await asyncio.gather(
                account.deposit_torn(100), account.deposit_torn(100)
            )

        asyncio.run(scenario())
        # Both tasks read 0 before either write landed: one deposit vanishes.
        assert account.balance_units == 100

    def test_atomic_deposit_keeps_both(self, account_module):
        account = account_module.Account()

        async def scenario():
            await asyncio.gather(
                account.deposit_atomic(100), account.deposit_atomic(100)
            )

        asyncio.run(scenario())
        assert account.balance_units == 200
