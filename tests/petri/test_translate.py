"""Tests for the §7.4 exchange→Petri translation and coverability.

The headline property: the net's completion marking is coverable exactly
when the sequencing-graph machinery shows the exchange feasible — on every
worked example, every §4.2.3 trust variant, and under §6 indemnity plans.
"""

import pytest

from repro.core.indemnity import minimal_indemnity_plan, plan_indemnities
from repro.petri import (
    Marking,
    coverable,
    exchange_completable,
    guided_coverability,
    saturate,
    translate,
)
from repro.workloads import (
    broker_bundle,
    example1,
    example2,
    example2_broker_trusts_source,
    example2_source_trusts_broker,
    figure7,
    poor_broker,
    resale_chain,
    simple_purchase,
)

AGREEMENT_CASES = [
    (example1, True),
    (example2, False),
    (poor_broker, False),
    (figure7, False),
    (example2_source_trusts_broker, True),
    (example2_broker_trusts_source, False),
    (simple_purchase, True),
    (lambda: resale_chain(3, retail=100.0), True),
    (lambda: resale_chain(2, retail=100.0, solvent=False), False),
]


class TestAgreementWithSequencingGraphs:
    @pytest.mark.parametrize(
        "factory,expected", AGREEMENT_CASES, ids=[f.__name__ for f, _ in AGREEMENT_CASES]
    )
    def test_coverability_matches_feasibility(self, factory, expected):
        problem = factory()
        assert problem.feasibility().feasible == expected
        result = exchange_completable(problem)
        assert result.coverable == expected
        assert not result.truncated

    def test_positive_answers_carry_real_witnesses(self):
        problem = example1()
        net, target = translate(problem)
        result = exchange_completable(problem)
        from repro.petri import fire_sequence

        final = fire_sequence(net, list(result.witness))
        assert final.covers(target)

    def test_witness_completes_both_exchanges(self):
        result = exchange_completable(example1())
        completes = [n for n in result.witness if n.startswith("complete:")]
        assert sorted(completes) == ["complete:Trusted1", "complete:Trusted2"]


class TestIndemnityUnlocking:
    def test_example2_plan_unlocks_net(self):
        problem = example2()
        plan = plan_indemnities(
            problem, [problem.interaction.find_edge("Consumer", "Trusted1")]
        )
        assert not exchange_completable(problem).coverable
        assert exchange_completable(problem, plan).coverable

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_bundles_unlock_with_greedy_plan(self, k):
        prices = tuple(float(10 * (i + 1)) for i in range(k))
        problem = broker_bundle(k, prices)
        assert not exchange_completable(problem).coverable
        plan = minimal_indemnity_plan(problem)
        assert exchange_completable(problem, plan).coverable


class TestNetStructure:
    def test_example1_shapes(self):
        net, target = translate(example1())
        names = {t.name for t in net.transitions}
        assert "deposit:Consumer--Trusted1" in names
        assert "assure:Broker--Trusted1" in names
        assert "complete:Trusted2" in names
        assert target == Marking.of({"done:Trusted1": 1, "done:Trusted2": 1})

    def test_poor_broker_has_fund_transition(self):
        net, _ = translate(poor_broker())
        names = {t.name for t in net.transitions}
        assert any(n.startswith("fund:Broker--Trusted2") for n in names)
        # And the broker's wholesale money is NOT endowed.
        endowed = dict(net.initial.counts)
        assert not any(
            place.startswith("holds:Broker:$10") for place in endowed
        )

    def test_solvent_broker_money_endowed(self):
        net, _ = translate(example1())
        assert any(
            place.startswith("holds:Broker:$10") for place, _ in net.initial.counts
        )

    def test_reseller_goods_not_endowed(self):
        net, _ = translate(example1())
        endowed = {place for place, _ in net.initial.counts}
        assert "holds:Producer:d" in endowed
        assert "holds:Broker:d" not in endowed

    def test_bundle_guards_require_sibling_assurance(self):
        net, _ = translate(example2())
        deposit = next(
            t for t in net.transitions if t.name == "deposit:Consumer--Trusted1"
        )
        guard_places = [p for p, _ in deposit.consumes if p.startswith("assured:")]
        assert guard_places == ["assured:Consumer--Trusted3"]

    def test_persona_deposit_unguarded(self):
        net, _ = translate(example2_source_trusts_broker())
        deposit = next(
            t for t in net.transitions if t.name == "deposit:Broker1--Trusted2"
        )
        assert not any(p.startswith("assured:") for p, _ in deposit.consumes)


class TestSearchMachinery:
    def test_saturation_sound_on_infeasible(self):
        net, target = translate(example2())
        markable, _ = saturate(net)
        assert any(place not in markable for place, _ in target.counts)

    def test_saturation_marks_feasible_targets(self):
        net, target = translate(example1())
        markable, _ = saturate(net)
        assert all(place in markable for place, _ in target.counts)

    def test_bfs_agrees_on_small_nets(self):
        for factory, expected in [(simple_purchase, True), (example2, False)]:
            net, target = translate(factory())
            assert coverable(net, target, bound=1).coverable == expected

    def test_guided_equals_bfs_on_example1(self):
        net, target = translate(example1())
        assert guided_coverability(net, target).coverable
        assert coverable(net, target, bound=1).coverable

    def test_target_above_bound_rejected(self):
        from repro.errors import ModelError

        net, _ = translate(example1())
        with pytest.raises(ModelError):
            coverable(net, Marking.of({"done:Trusted1": 5}), bound=1)
