"""Unit tests for the Petri-net core (places, transitions, markings)."""

import pytest

from repro.errors import ModelError
from repro.petri import Marking, PetriNet, Transition, fire_sequence, reachable_markings


class TestMarking:
    def test_of_drops_zero_counts(self):
        m = Marking.of({"a": 1, "b": 0})
        assert m.get("a") == 1
        assert m.get("b") == 0
        assert m.as_dict() == {"a": 1}

    def test_negative_counts_rejected(self):
        with pytest.raises(ModelError):
            Marking.of({"a": -1})

    def test_covers(self):
        big = Marking.of({"a": 2, "b": 1})
        small = Marking.of({"a": 1})
        assert big.covers(small)
        assert not small.covers(big)
        assert big.covers(Marking.of({}))

    def test_add_and_clamp(self):
        m = Marking.of({"a": 1}).add({"a": 4, "b": 2})
        assert m.get("a") == 5
        clamped = m.clamp(3)
        assert clamped.get("a") == 3 and clamped.get("b") == 2

    def test_hashable_and_equal(self):
        assert Marking.of({"a": 1, "b": 2}) == Marking.of({"b": 2, "a": 1})
        assert len({Marking.of({"a": 1}), Marking.of({"a": 1})}) == 1

    def test_str(self):
        assert str(Marking.of({})) == "{}"
        assert "a:1" in str(Marking.of({"a": 1}))


class TestTransition:
    def test_make_from_iterable_counts_duplicates(self):
        t = Transition.make("t", ["a", "a", "b"], ["c"])
        assert dict(t.consumes) == {"a": 2, "b": 1}

    def test_enabled_and_fire(self):
        t = Transition.make("t", {"a": 1}, {"b": 1})
        m = Marking.of({"a": 1})
        assert t.enabled(m)
        fired = t.fire(m)
        assert fired == Marking.of({"b": 1})

    def test_fire_disabled_raises(self):
        t = Transition.make("t", {"a": 1}, {"b": 1})
        with pytest.raises(ModelError):
            t.fire(Marking.of({}))

    def test_self_loop_preserves_token(self):
        t = Transition.make("t", {"a": 1}, {"a": 1, "b": 1})
        fired = t.fire(Marking.of({"a": 1}))
        assert fired.get("a") == 1 and fired.get("b") == 1

    def test_str_renders_weights(self):
        t = Transition.make("t", {"a": 2}, {"b": 1})
        assert "2·a" in str(t)


class TestPetriNet:
    def _net(self):
        return PetriNet(
            [
                Transition.make("t1", {"a": 1}, {"b": 1}),
                Transition.make("t2", {"b": 1}, {"c": 1}),
            ],
            Marking.of({"a": 1}),
        )

    def test_places_collected(self):
        assert self._net().places == {"a", "b", "c"}

    def test_duplicate_transition_names_rejected(self):
        with pytest.raises(ModelError):
            PetriNet(
                [
                    Transition.make("t", {"a": 1}, {}),
                    Transition.make("t", {"b": 1}, {}),
                ],
                Marking.of({}),
            )

    def test_enabled_transitions(self):
        net = self._net()
        assert [t.name for t in net.enabled_transitions(net.initial)] == ["t1"]

    def test_fire_sequence_helper(self):
        final = fire_sequence(self._net(), ["t1", "t2"])
        assert final == Marking.of({"c": 1})

    def test_fire_sequence_unknown_name(self):
        with pytest.raises(ModelError):
            fire_sequence(self._net(), ["zap"])

    def test_reachable_markings(self):
        markings = reachable_markings(self._net())
        assert markings == {
            Marking.of({"a": 1}),
            Marking.of({"b": 1}),
            Marking.of({"c": 1}),
        }
