"""Every script under ``examples/`` must run to completion.

The examples double as executable documentation; a refactor that strands one
of them is a regression even when the library tests stay green.  Each script
exposes ``main()``, so we import it by path and call it with stdout captured.
"""

import glob
import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
SCRIPTS = sorted(glob.glob(os.path.join(EXAMPLES_DIR, "*.py")))


def test_examples_exist():
    assert len(SCRIPTS) >= 6


@pytest.mark.parametrize(
    "path", SCRIPTS, ids=[os.path.basename(p) for p in SCRIPTS]
)
def test_example_runs(path, capsys):
    name = f"example_smoke_{os.path.basename(path)[:-3]}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
        assert hasattr(module, "main"), f"{path} has no main()"
        module.main()
    finally:
        sys.modules.pop(name, None)
    out = capsys.readouterr().out
    assert out.strip(), f"{path} printed nothing"
