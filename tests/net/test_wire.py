"""Codec round-trips and golden frame bytes for the wire format."""

from __future__ import annotations

import struct
from dataclasses import replace

import pytest

from repro.core.actions import notify, transfer
from repro.core.items import document, money
from repro.core.parties import consumer, producer, trusted
from repro.net.wire import (
    MAX_FRAME_BYTES,
    WireError,
    action_from_json,
    action_to_json,
    decode_frame,
    encode_frame,
    encode_json,
    item_from_json,
    item_to_json,
    party_from_json,
    party_to_json,
)

CUSTOMER = consumer("Customer")
PRODUCER = producer("Producer")
TRUSTED = trusted("Trusted")


def test_party_round_trip():
    for party in (CUSTOMER, PRODUCER, TRUSTED):
        assert party_from_json(party_to_json(party)) == party


def test_item_round_trip():
    for item in (money(10), money(2.5, "fee"), document("d"), None):
        assert item_from_json(item_to_json(item)) == item


@pytest.mark.parametrize(
    "action",
    [
        transfer(CUSTOMER, TRUSTED, money(10)),
        transfer(PRODUCER, TRUSTED, document("d")),
        transfer(CUSTOMER, TRUSTED, money(10)).inverse(),
        notify(TRUSTED, PRODUCER),
        replace(notify(TRUSTED, PRODUCER), deadline=42.5),
    ],
)
def test_action_round_trip(action):
    rebuilt = action_from_json(action_to_json(action))
    assert rebuilt == action
    assert rebuilt.inverted == action.inverted
    assert rebuilt.deadline == action.deadline


def test_frame_round_trip():
    obj = {"type": "ack", "key": "Customer:1"}
    frame = encode_frame(obj)
    length = struct.unpack(">I", frame[:4])[0]
    assert length == len(frame) - 4
    assert decode_frame(frame[4:]) == obj


def test_golden_frame_bytes():
    # Canonical encoding (sorted keys, compact separators) means identical
    # values must produce identical bytes forever — a wire format change
    # that breaks this breaks WAL replay of old logs.
    frame = encode_frame({"type": "ack", "key": "A:1"})
    payload = b'{"key":"A:1","type":"ack"}'
    assert frame == struct.pack(">I", len(payload)) + payload


def test_canonical_json_is_key_order_independent():
    assert encode_json({"b": 1, "a": 2}) == encode_json({"a": 2, "b": 1})


def test_decode_rejects_garbage():
    with pytest.raises(WireError):
        decode_frame(b"\xff\xfe not json")
    with pytest.raises(WireError):
        decode_frame(b'"a bare string"')
    with pytest.raises(WireError):
        decode_frame(b'{"no_discriminator":1}')


def test_oversized_frame_rejected():
    with pytest.raises(WireError):
        encode_frame({"type": "act", "blob": "x" * (MAX_FRAME_BYTES + 1)})


def test_bad_payloads_raise_wire_error():
    with pytest.raises(WireError):
        party_from_json({"name": "X", "role": "no-such-role"})
    with pytest.raises(WireError):
        item_from_json({"kind": "gold-bar", "label": "g"})
    with pytest.raises(WireError):
        action_from_json({"kind": "pay"})
