"""Crash recovery under real SIGKILLs: WAL replay back to the oracle ledger.

Marked ``net``: run with ``pytest -m net``.
"""

from __future__ import annotations

import os

import pytest

from repro.net.supervisor import NetRunConfig, run_networked_exchange
from repro.net.wal import replay
from repro.sim.faults import FaultPlan, PartyFault
from repro.sim.runtime import simulate
from repro.workloads import example1, simple_purchase

pytestmark = pytest.mark.net

CONFIG = NetRunConfig(time_scale=0.02, deadline=60.0, quiet_period=4.0, spawn="process")


def test_sigkill_mid_protocol_recovers_to_oracle(net_run_dir):
    problem = simple_purchase()
    oracle = simulate(problem, deadline=60.0)  # the fault-free ledger
    plan = FaultPlan(
        seed=3, parties=(PartyFault("Producer", crash_at=2.0, restart_at=12.0),)
    ).validate()
    run = run_networked_exchange(problem, net_run_dir, CONFIG, fault_plan=plan)
    assert run.kills == 1 and run.restarts == 1
    assert run.outcome == "quiescent" and run.result.quiescent
    assert all(v.ok for v in run.report.verdicts)
    assert run.result.final.digest() == oracle.final.digest()
    # The victim's WAL tells the whole story: endowment, then the replayed
    # prefix the restarted process recovered from.
    records = replay(os.path.join(net_run_dir, "wal", "Producer.wal"))
    kinds = [record["rec"] for record in records]
    assert kinds[0] == "endow"
    assert "send" in kinds  # it deposited its document (before or after death)


def test_trusted_component_sigkill_recovers(net_run_dir):
    # Killing the escrow holder itself: its WAL must reconstruct received
    # deposits, the armed deadline, and still release correctly.
    problem = example1()
    oracle = simulate(problem, deadline=60.0)
    plan = FaultPlan(
        seed=5, parties=(PartyFault("Trusted1", crash_at=3.0, restart_at=15.0),)
    ).validate()
    run = run_networked_exchange(problem, net_run_dir, CONFIG, fault_plan=plan)
    assert run.kills == 1 and run.restarts == 1
    assert all(v.ok for v in run.report.verdicts)
    assert run.result.final.digest() == oracle.final.digest()
    assert run.node_reports["Trusted1"]["phase"] == "completed"


def test_permanent_silence_reverses_and_stays_safe(net_run_dir):
    problem = simple_purchase()
    plan = FaultPlan(
        seed=9, parties=(PartyFault("Producer", crash_at=1.0, restart_at=None),)
    ).validate()
    run = run_networked_exchange(problem, net_run_dir, CONFIG, fault_plan=plan)
    assert run.kills == 1 and run.restarts == 0
    result = run.result
    # The producer never deposits; the deadline reverses the customer's
    # money and nothing net moves.
    assert result.final.digest() == result.initial.digest()
    verdicts = {v.party.name: v.ok for v in run.report.verdicts}
    assert verdicts["Customer"] and verdicts["Trusted"]
