"""Write-ahead log round-trips, torn tails, and corruption detection."""

from __future__ import annotations

import pytest

from repro.errors import NetRuntimeError
from repro.net.wal import WriteAheadLog, replay
from repro.net.wire import encode_json

RECORDS = [
    {"rec": "endow", "balance": 1000, "docs": ["d"]},
    {"rec": "send", "key": "Customer:1", "action": {"kind": "pay"}},
    {"rec": "ack", "key": "Customer:1"},
]


def test_round_trip(tmp_path):
    path = str(tmp_path / "node.wal")
    wal = WriteAheadLog(path)
    for record in RECORDS:
        wal.append(record)
    wal.close()
    assert replay(path) == RECORDS


def test_missing_and_empty_files_replay_empty(tmp_path):
    assert replay(str(tmp_path / "never-written.wal")) == []
    empty = tmp_path / "empty.wal"
    empty.touch()
    assert replay(str(empty)) == []


def test_append_requires_discriminator(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "node.wal"))
    with pytest.raises(NetRuntimeError):
        wal.append({"key": "no-rec-field"})
    wal.close()


def test_reopen_appends(tmp_path):
    path = str(tmp_path / "node.wal")
    first = WriteAheadLog(path)
    first.append(RECORDS[0])
    first.close()
    second = WriteAheadLog(path)  # a restarted node reopens its own log
    second.append(RECORDS[1])
    second.close()
    assert replay(path) == RECORDS[:2]


def test_truncated_tail_is_dropped(tmp_path):
    # A SIGKILL mid-append can cut the final line anywhere; every prefix of
    # the torn record must replay to exactly the fully-written records.
    path = tmp_path / "torn.wal"
    intact = b"".join(encode_json(r) + b"\n" for r in RECORDS[:2])
    torn = encode_json(RECORDS[2]) + b"\n"
    for cut in range(len(torn) - 1):
        path.write_bytes(intact + torn[:cut])
        assert replay(str(path)) == RECORDS[:2], f"cut at byte {cut}"
    path.write_bytes(intact + torn)
    assert replay(str(path)) == RECORDS  # fully written after all


def test_corrupt_middle_raises(tmp_path):
    path = tmp_path / "corrupt.wal"
    lines = [encode_json(RECORDS[0]), b'{"rec": truncated-garbage', encode_json(RECORDS[2])]
    path.write_bytes(b"\n".join(lines) + b"\n")
    with pytest.raises(NetRuntimeError, match="corrupt WAL record"):
        replay(str(path))


def test_corrupt_middle_error_pinpoints_the_record(tmp_path):
    # The message names the byte offset and record index, so `dd`/`head -c`
    # can slice the damage out of a real log without guesswork.
    path = tmp_path / "corrupt.wal"
    first = encode_json(RECORDS[0])
    lines = [first, b'{"rec": truncated-garbage', encode_json(RECORDS[2])]
    path.write_bytes(b"\n".join(lines) + b"\n")
    with pytest.raises(NetRuntimeError) as excinfo:
        replay(str(path))
    message = str(excinfo.value)
    assert "record 1 of 3" in message
    assert f"byte offset {len(first) + 1}" in message


def test_non_record_error_pinpoints_the_record(tmp_path):
    path = tmp_path / "alien.wal"
    path.write_bytes(encode_json({"no": "rec"}) + b"\n" + encode_json(RECORDS[0]) + b"\n")
    with pytest.raises(NetRuntimeError) as excinfo:
        replay(str(path))
    message = str(excinfo.value)
    assert "record 0 of 2" in message
    assert "byte offset 0" in message


def test_non_record_line_raises(tmp_path):
    path = tmp_path / "alien.wal"
    path.write_bytes(encode_json({"no": "rec"}) + b"\n" + encode_json(RECORDS[0]) + b"\n")
    with pytest.raises(NetRuntimeError, match="not a record"):
        replay(str(path))


def test_golden_bytes_are_canonical(tmp_path):
    # The on-disk encoding is the canonical wire encoding: sorted keys,
    # compact separators, one record per line.  Old logs must stay readable.
    path = str(tmp_path / "golden.wal")
    wal = WriteAheadLog(path)
    wal.append({"rec": "ack", "key": "A:1"})
    wal.close()
    with open(path, "rb") as fh:
        assert fh.read() == b'{"key":"A:1","rec":"ack"}\n'
