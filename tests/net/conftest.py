"""Fixtures for the networked suite: spawning, readiness, guaranteed teardown.

Two tiers share this directory:

* unmarked tests (codec, WAL, in-process loopback runs) execute in tier-1;
* tests marked ``net`` spawn real ``repro client`` subprocesses and real
  SIGKILLs — select them with ``pytest -m net``.

Whatever happens, subprocesses never outlive their test: the
``client_spawner`` fixture SIGKILLs and reaps every process it spawned at
teardown, and ``net_run_dir`` copies the run's artifacts (WALs, logs,
delivery log) into ``net_artifacts/<test name>/`` when the test fails, so
CI uploads carry the post-mortem.
"""

from __future__ import annotations

import os
import shutil
import socket
import subprocess
import sys
import time

import pytest

import repro


def ephemeral_port() -> int:
    """An OS-assigned free TCP port (racy by nature; fine for tests)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    # Stash each phase's report on the item so fixtures can ask "did the
    # test body fail?" during teardown (the standard pytest recipe).
    outcome = yield
    report = outcome.get_result()
    setattr(item, f"rep_{report.when}", report)


@pytest.fixture
def net_run_dir(tmp_path, request):
    """A run directory whose artifacts survive to ``net_artifacts/`` on failure."""
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    yield str(run_dir)
    report = getattr(request.node, "rep_call", None)
    if report is not None and report.failed and run_dir.exists():
        destination = os.path.join("net_artifacts", request.node.name)
        shutil.rmtree(destination, ignore_errors=True)
        shutil.copytree(run_dir, destination)


class ClientSpawner:
    """Spawn ``repro client`` node subprocesses; kill + reap them all at exit."""

    def __init__(self, log_dir: str) -> None:
        self.log_dir = log_dir
        self.procs: list[subprocess.Popen] = []

    def spawn(
        self,
        spec_path: str,
        party: str,
        port: int,
        wal_path: str,
        *,
        deadline: float | None = None,
        working_capital: int = 0,
        host: str = "127.0.0.1",
    ) -> subprocess.Popen:
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "client",
            spec_path,
            "--party",
            party,
            "--host",
            host,
            "--port",
            str(port),
            "--wal",
            wal_path,
            "--working-capital",
            str(working_capital),
        ]
        if deadline is not None:
            argv += ["--deadline", str(deadline)]
        os.makedirs(self.log_dir, exist_ok=True)
        with open(os.path.join(self.log_dir, f"{party}.log"), "ab") as log:
            proc = subprocess.Popen(argv, stdout=log, stderr=subprocess.STDOUT, env=env)
        self.procs.append(proc)
        return proc

    @staticmethod
    def wait_ready(wal_path: str, timeout: float = 20.0) -> None:
        """Block until the node has durably started.

        A node's very first WAL write (its endowment record, or the replay
        that precedes reconnection) happens before it dials the proxy, so a
        non-empty WAL is the earliest durable readiness signal.
        """
        give_up = time.monotonic() + timeout
        while time.monotonic() < give_up:
            if os.path.exists(wal_path) and os.path.getsize(wal_path) > 0:
                return
            time.sleep(0.05)
        raise TimeoutError(f"node never became ready: {wal_path}")

    def reap(self) -> None:
        """SIGKILL anything still running, then collect every exit status."""
        for proc in self.procs:
            if proc.poll() is None:
                proc.kill()
        for proc in self.procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                pass


@pytest.fixture
def client_spawner(tmp_path):
    spawner = ClientSpawner(str(tmp_path / "logs"))
    yield spawner
    spawner.reap()
