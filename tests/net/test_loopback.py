"""Fast in-process ("task" spawn) runs of the socket runtime — tier-1 tests.

These use real localhost TCP, the real codec, WAL and fault proxy, but run
every node as an asyncio task in this process, so they are quick enough
for the default test tier.  Real subprocesses and SIGKILLs live in the
``-m net`` suite.
"""

from __future__ import annotations

import json
import os

from repro.net.supervisor import NetRunConfig, run_networked_exchange
from repro.sim.faults import FaultPlan, PartyFault
from repro.sim.runtime import simulate
from repro.workloads import example1, simple_purchase

FAST = dict(time_scale=0.005, deadline=60.0, quiet_period=4.0, spawn="task")


def test_fault_free_run_matches_simulator(net_run_dir):
    problem = simple_purchase()
    oracle = simulate(problem, deadline=60.0)
    run = run_networked_exchange(problem, net_run_dir, NetRunConfig(**FAST))
    result = run.result
    assert run.outcome == "quiescent" and result.quiescent
    assert result.stranded_messages == 0
    assert all(v.ok for v in run.report.verdicts)
    assert result.initial.digest() == oracle.initial.digest()
    assert result.final.digest() == oracle.final.digest()
    assert len(result.delivered) == len(oracle.delivered)
    assert result.completed_agents and not result.reversed_agents


def test_artifacts_mirror_the_run(net_run_dir):
    problem = simple_purchase()
    run = run_networked_exchange(problem, net_run_dir, NetRunConfig(**FAST))
    for name in ("problem.spec", "deliveries.jsonl", "provenance.json", "safety.json"):
        assert os.path.exists(os.path.join(net_run_dir, name)), name
    with open(os.path.join(net_run_dir, "provenance.json"), encoding="utf-8") as fh:
        provenance = json.load(fh)
    assert provenance["final_digest"] == run.result.final.digest()
    assert provenance["quiescent"] is True
    with open(os.path.join(net_run_dir, "deliveries.jsonl"), "rb") as fh:
        lines = fh.read().splitlines()
    assert len(lines) == len(run.result.delivered)
    wal_dir = os.path.join(net_run_dir, "wal")
    assert sorted(os.listdir(wal_dir)) == [
        "Customer.wal",
        "Producer.wal",
        "Trusted.wal",
    ]


def test_crash_and_restart_recovers_to_oracle(net_run_dir):
    problem = simple_purchase()
    oracle = simulate(problem, deadline=60.0)
    plan = FaultPlan(
        seed=7, parties=(PartyFault("Producer", crash_at=2.0, restart_at=10.0),)
    ).validate()
    run = run_networked_exchange(
        problem, net_run_dir, NetRunConfig(**FAST), fault_plan=plan
    )
    assert run.kills == 1 and run.restarts == 1
    assert run.result.quiescent
    assert all(v.ok for v in run.report.verdicts)
    assert run.result.final.digest() == oracle.final.digest()


def test_withholding_adversary_triggers_reversal(net_run_dir):
    problem = simple_purchase()
    run = run_networked_exchange(
        problem,
        net_run_dir,
        NetRunConfig(**FAST),
        adversaries={"Producer": 0},  # reneges: never deposits its document
    )
    result = run.result
    assert result.reversed_agents and not result.completed_agents
    # Reversal restores the status quo ante: nothing net moved.
    assert result.final.digest() == result.initial.digest()
    assert all(v.ok for v in run.report.verdicts)


def test_three_party_chain_over_sockets(net_run_dir):
    problem = example1()
    oracle = simulate(problem, deadline=60.0)
    run = run_networked_exchange(problem, net_run_dir, NetRunConfig(**FAST))
    assert run.result.quiescent
    assert all(v.ok for v in run.report.verdicts)
    assert run.result.final.digest() == oracle.final.digest()
