"""Multi-process integration: real ``repro client`` subprocesses end-to-end.

Marked ``net``: run with ``pytest -m net``.
"""

from __future__ import annotations

import asyncio
import os
import time

import pytest

from repro.net import bootstrap
from repro.net.proxy import NetFaultProxy
from repro.net.supervisor import NetRunConfig, run_networked_exchange
from repro.sim.runtime import simulate
from repro.spec.formatter import format_problem
from repro.workloads import simple_purchase

pytestmark = pytest.mark.net

TIME_SCALE = 0.02


def test_supervised_process_run_matches_simulator(net_run_dir):
    problem = simple_purchase()
    oracle = simulate(problem, deadline=60.0)
    run = run_networked_exchange(
        problem,
        net_run_dir,
        NetRunConfig(time_scale=TIME_SCALE, deadline=60.0, quiet_period=4.0, spawn="process"),
    )
    result = run.result
    assert run.outcome == "quiescent" and result.quiescent
    assert all(v.ok for v in run.report.verdicts)
    assert result.final.digest() == oracle.final.digest()
    assert {name for name in run.node_reports} == {"Customer", "Producer", "Trusted"}
    assert run.node_reports["Trusted"]["phase"] == "completed"
    # Every node ran as its own process with its own log and WAL.
    for name in ("Customer", "Producer", "Trusted"):
        assert os.path.exists(os.path.join(net_run_dir, "logs", f"{name}.log"))
        assert os.path.getsize(os.path.join(net_run_dir, "wal", f"{name}.wal")) > 0


def _setup(tmp_path, problem):
    protocol = bootstrap.derive_protocol(problem, 60.0)
    spec_path = tmp_path / "problem.spec"
    spec_path.write_text(format_problem(problem))
    names = [p.name for p in problem.interaction.principals] + [
        p.name for p in protocol.trusted_specs
    ]
    return str(spec_path), names


async def _await_quiescence(proxy, names, timeout=60.0):
    give_up = time.monotonic() + timeout
    while True:
        await asyncio.sleep(0.05)
        assert time.monotonic() < give_up, "exchange never quiesced"
        if proxy.in_flight_keys():
            continue
        if any(name not in proxy.reports for name in names):
            continue
        if proxy.armed_trusted():
            continue
        if time.monotonic() - proxy.last_activity < 0.3:
            continue
        return


def test_externally_spawned_clients_complete_exchange(client_spawner, tmp_path):
    problem = simple_purchase()
    oracle = simulate(problem, deadline=60.0)

    async def drive():
        spec_path, names = _setup(tmp_path, problem)
        proxy = NetFaultProxy(expected=frozenset(names), time_scale=TIME_SCALE)
        port = await proxy.start()
        try:
            wals = {name: str(tmp_path / f"{name}.wal") for name in names}
            for name in names:
                client_spawner.spawn(spec_path, name, port, wals[name], deadline=60.0)
            for name in names:  # readiness: first WAL record is durable
                await asyncio.to_thread(client_spawner.wait_ready, wals[name])
            assert await proxy.wait_connected(frozenset(names), timeout=20.0)
            proxy.open_for_business()
            await _await_quiescence(proxy, names)
            proxy.broadcast_shutdown()
            await asyncio.sleep(0.1)
        finally:
            await proxy.close()
        return proxy

    proxy = asyncio.run(drive())
    protocol = bootstrap.derive_protocol(problem, 60.0)
    ledger = bootstrap.build_initial_ledger(problem, protocol, 0)
    ledger.seal()
    for action in proxy.delivered_actions():
        ledger.apply(action)
        ledger.check()
    assert ledger.snapshot().digest() == oracle.final.digest()


def test_manual_sigkill_and_respawn_recovers(client_spawner, tmp_path):
    """Kill the trusted component's process mid-exchange; respawn it from
    its WAL via the spawner fixture; the exchange still completes to the
    fault-free oracle's ledger."""
    problem = simple_purchase()
    oracle = simulate(problem, deadline=60.0)

    async def drive():
        spec_path, names = _setup(tmp_path, problem)
        proxy = NetFaultProxy(expected=frozenset(names), time_scale=TIME_SCALE)
        port = await proxy.start()
        procs = {}
        try:
            wals = {name: str(tmp_path / f"{name}.wal") for name in names}
            for name in names:
                procs[name] = client_spawner.spawn(
                    spec_path, name, port, wals[name], deadline=60.0
                )
            assert await proxy.wait_connected(frozenset(names), timeout=20.0)
            proxy.open_for_business()
            while not proxy.delivery_log:  # let the exchange actually start
                await asyncio.sleep(0.02)
            victim = procs["Trusted"]
            victim.kill()  # SIGKILL: no atexit, no flushing, no goodbyes
            await asyncio.to_thread(victim.wait)
            await asyncio.sleep(0.3)  # retries pile up against the dead node
            procs["Trusted"] = client_spawner.spawn(
                spec_path, "Trusted", port, wals["Trusted"], deadline=60.0
            )
            await _await_quiescence(proxy, names)
            proxy.broadcast_shutdown()
            await asyncio.sleep(0.1)
        finally:
            await proxy.close()
        return proxy

    proxy = asyncio.run(drive())
    protocol = bootstrap.derive_protocol(problem, 60.0)
    ledger = bootstrap.build_initial_ledger(problem, protocol, 0)
    ledger.seal()
    for action in proxy.delivered_actions():
        ledger.apply(action)
        ledger.check()
    assert ledger.snapshot().digest() == oracle.final.digest()
    assert proxy.reports["Trusted"]["phase"] == "completed"
