"""Differential parity: seeded fault plans through simulator and sockets.

Marked ``net``: run with ``pytest -m net``.  Acceptance bar of the socket
runtime: across ≥20 seeds, the same seeded :class:`FaultPlan` yields the
same per-party safety verdicts in the in-process simulator and over real
sockets with real process kills, with money conserved end to end.
"""

from __future__ import annotations

import pytest

from repro.conformance.netparity import ParityConfig, parity_cases, run_parity_case

pytestmark = pytest.mark.net

SEEDS = 20


def test_twenty_seed_parity(tmp_path):
    config = ParityConfig(spawn="process", time_scale=0.01)
    verdicts = [
        run_parity_case(case, str(tmp_path / f"case{case.index}"), config)
        for case in parity_cases(SEEDS, master_seed=1996)
    ]
    simulated = [v for v in verdicts if v.simulated]
    assert len(simulated) >= SEEDS // 2  # most random problems are feasible
    mismatched = [v.describe() for v in simulated if not v.ok]
    assert not mismatched, mismatched
    assert all(v.net_outcome == "quiescent" for v in simulated)
    # The sweep must have exercised real process faults, not just clean runs.
    assert any(v.kills >= 1 for v in simulated)
    assert any(v.sim_safe and v.net_safe for v in simulated)
