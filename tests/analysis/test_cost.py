"""Unit tests for the §8 cost model."""

from repro.obs import metrics_scope, snapshot_digest
from repro.analysis.cost import (
    chain_cost_sweep,
    format_chain_table,
    measured_cost,
    static_cost,
)
from repro.workloads import example1, example2, resale_chain, simple_purchase


class TestStaticCost:
    def test_example1(self):
        cost = static_cost(example1())
        assert cost.n_exchanges == 2
        assert cost.direct == 4
        assert cost.mediated_static == 8
        assert cost.mediated_with_notifies == 10
        assert cost.universal == 8
        assert cost.mistrust_ratio == 2.0

    def test_example2(self):
        cost = static_cost(example2())
        assert cost.n_exchanges == 4
        assert cost.direct == 8
        assert cost.mediated_static == 16

    def test_ratio_is_always_two(self):
        for factory in (simple_purchase, example1, example2):
            assert static_cost(factory()).mistrust_ratio == 2.0


class TestMeasuredCost:
    def test_example1_matches_section5_listing(self):
        measured = measured_cost(example1())
        assert measured.transfers == 8
        assert measured.notifies == 2
        assert measured.total == 10

    def test_measured_transfers_match_static(self):
        # The simulator's transfer count equals the §8 static 4-per-exchange.
        for factory in (simple_purchase, example1):
            problem = factory()
            assert measured_cost(problem).transfers == static_cost(problem).mediated_static

    def test_chain_notifies_one_per_intermediary(self):
        problem = resale_chain(3, retail=100.0)
        measured = measured_cost(problem)
        assert measured.notifies == 4  # one per trusted component


class TestChainSweep:
    def test_rows_and_monotonicity(self):
        rows = chain_cost_sweep(4)
        assert len(rows) == 5
        assert [r.n_brokers for r in rows] == [0, 1, 2, 3, 4]
        totals = [r.measured_total for r in rows]
        assert totals == sorted(totals)

    def test_constant_ratio(self):
        for row in chain_cost_sweep(3):
            assert row.ratio == 2.0

    def test_measured_equals_five_per_exchange(self):
        # 4 transfers + 1 notify per mediated exchange in a chain.
        for row in chain_cost_sweep(3):
            assert row.measured_total == 5 * row.n_exchanges

    def test_format_table(self):
        lines = format_chain_table(chain_cost_sweep(2))
        assert len(lines) == 4
        assert "ratio" in lines[0]
        assert lines[1].split()[-1] == "2.0"


class TestMetricsHooks:
    def test_static_cost_counts_evaluations(self):
        with metrics_scope() as tracer:
            static_cost(example1())
            static_cost(example2())
        assert tracer.metrics.to_dict()["analysis.cost.static_evaluations"] == 2

    def test_measured_cost_accumulates_deliveries(self):
        with metrics_scope() as tracer:
            measured = measured_cost(example1())
        stats = tracer.metrics.to_dict()
        assert stats["analysis.cost.transfers"] == measured.transfers == 8
        assert stats["analysis.cost.notifies"] == measured.notifies == 2
        # The simulator's own rollup agrees with the analysis-level counters.
        assert stats["net.delivered"] == measured.total

    def test_snapshot_digest_is_replay_stable(self):
        with metrics_scope() as first:
            chain_cost_sweep(2)
        with metrics_scope() as second:
            chain_cost_sweep(2)
        assert snapshot_digest(first.metrics.snapshot()) == snapshot_digest(
            second.metrics.snapshot()
        )
