"""The batched feasibility pipeline: ordering, determinism, spec rebuilds.

The acceptance bar for the pipeline is encoded here: a batched study over
1000+ random problems runs through the process-pool driver and returns
ordered, deterministic results identical to the serial path.
"""

import pytest

from repro.analysis import (
    BatchVerdict,
    ProblemSpec,
    batch_specs,
    check_feasibility_batch,
    parallel_map,
)
from repro.analysis.batch import SERIAL_THRESHOLD
from repro.analysis.feasibility_study import priority_sweep, trust_sweep
from repro.analysis.indemnity_study import bundle_scaling, ordering_costs
from repro.workloads import RandomProblemConfig, random_problem, random_problem_batch


def _double(x):
    return 2 * x


class TestParallelMap:
    def test_serial_path_preserves_order(self):
        assert parallel_map(_double, range(5), processes=1) == [0, 2, 4, 6, 8]

    def test_small_batches_run_serially_even_with_processes(self):
        items = list(range(SERIAL_THRESHOLD - 1))
        assert parallel_map(_double, items, processes=4) == [2 * x for x in items]

    def test_pool_preserves_order(self):
        items = list(range(100))
        assert parallel_map(_double, items, processes=2) == [2 * x for x in items]

    def test_pool_matches_serial(self):
        items = list(range(50))
        assert parallel_map(_double, items, processes=2) == parallel_map(
            _double, items, processes=1
        )

    def test_explicit_chunksize(self):
        items = list(range(40))
        assert parallel_map(_double, items, processes=2, chunksize=5) == [
            2 * x for x in items
        ]


class TestProblemSpec:
    def test_build_matches_random_problem(self):
        config = RandomProblemConfig(n_principals=7, n_exchanges=5)
        built = ProblemSpec(config=config, seed=11).build()
        direct = random_problem(config, seed=11)
        assert [e.label for e in built.interaction.edges] == [
            e.label for e in direct.interaction.edges
        ]
        assert built.interaction.priority_edges == direct.interaction.priority_edges

    def test_trust_edges_applied_by_name(self):
        base = ProblemSpec(seed=3).build()
        principals = sorted(p.name for p in base.interaction.principals)
        truster, trustee = principals[0], principals[1]
        with_trust = ProblemSpec(seed=3, trust_edges=((truster, trustee),)).build()
        by_name = {p.name: p for p in with_trust.interaction.parties}
        assert with_trust.trust.trusts(by_name[truster], by_name[trustee])
        assert not base.trust.trusts(
            {p.name: p for p in base.interaction.parties}[truster],
            {p.name: p for p in base.interaction.parties}[trustee],
        )

    def test_specs_are_picklable(self):
        import pickle

        spec = ProblemSpec(seed=5, trust_edges=(("P1", "P2"),))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec


class TestBatchSpecs:
    def test_matches_random_problem_batch(self):
        config = RandomProblemConfig(n_principals=6, n_exchanges=4)
        specs = batch_specs(10, config, seed=21)
        rebuilt = [spec.build() for spec in specs]
        direct = random_problem_batch(10, config, seed=21)
        for a, b in zip(rebuilt, direct):
            assert [e.label for e in a.interaction.edges] == [
                e.label for e in b.interaction.edges
            ]
            assert a.interaction.priority_edges == b.interaction.priority_edges


class TestCheckFeasibilityBatch:
    def test_accepts_ready_problems_and_specs_mixed(self):
        config = RandomProblemConfig(n_principals=6, n_exchanges=4)
        spec = ProblemSpec(config=config, seed=2)
        verdicts = check_feasibility_batch([spec, spec.build()], processes=1)
        assert verdicts[0] == verdicts[1]

    def test_verdict_matches_direct_feasibility(self):
        problem = random_problem(seed=9)
        (verdict,) = check_feasibility_batch([problem], processes=1)
        direct = problem.feasibility()
        assert verdict == BatchVerdict(
            feasible=direct.feasible,
            steps=len(direct.trace.steps),
            remaining=len(direct.trace.remaining),
            blockages=len(direct.blockages),
        )

    def test_persona_ablation_threads_through(self):
        from repro.workloads import example2_source_trusts_broker

        problem = example2_source_trusts_broker()
        (with_persona,) = check_feasibility_batch([problem], processes=1)
        (without,) = check_feasibility_batch(
            [problem], enable_persona_clause=False, processes=1
        )
        assert with_persona.feasible and not without.feasible

    @pytest.mark.parametrize("strategy", ["fifo", "lifo", "random"])
    def test_pool_matches_serial_across_strategies(self, strategy):
        specs = batch_specs(40, RandomProblemConfig(), seed=5)
        serial = check_feasibility_batch(specs, strategy=strategy, processes=1)
        pooled = check_feasibility_batch(specs, strategy=strategy, processes=2)
        assert pooled == serial

    def test_thousand_problem_study_is_ordered_and_deterministic(self):
        # The pipeline's acceptance criterion: >= 1000 random problems
        # through the process pool, results in input order, identical to the
        # serial path (and to a second pooled run).
        specs = batch_specs(1000, RandomProblemConfig(), seed=0)
        serial = check_feasibility_batch(specs, processes=1)
        pooled = check_feasibility_batch(specs, processes=4)
        assert len(pooled) == 1000
        assert pooled == serial
        assert pooled == check_feasibility_batch(specs, processes=4)
        # Sanity: the batch straddles the feasibility boundary, so ordering
        # mistakes could not cancel out invisibly.
        feasible = sum(1 for v in pooled if v.feasible)
        assert 0 < feasible < 1000


class TestStudiesParallelDeterminism:
    """The rewired studies must not depend on the process count."""

    def test_priority_sweep(self):
        serial = priority_sweep(probabilities=[0.0, 0.6], samples=12, processes=1)
        pooled = priority_sweep(probabilities=[0.0, 0.6], samples=12, processes=2)
        assert pooled == serial

    def test_trust_sweep(self):
        serial = trust_sweep(edge_counts=[0, 4], samples=6, processes=1)
        pooled = trust_sweep(edge_counts=[0, 4], samples=6, processes=2)
        assert pooled == serial

    def test_ordering_costs(self):
        prices = (10.0, 20.0, 30.0, 40.0)
        assert ordering_costs(prices, processes=2) == ordering_costs(
            prices, processes=1
        )

    def test_bundle_scaling(self):
        assert bundle_scaling(max_k=10, processes=2) == bundle_scaling(
            max_k=10, processes=1
        )
