"""Unit tests for the latency analysis (§8 extended to time)."""

from repro.obs import metrics_scope
from repro.analysis.latency import (
    chain_latency_sweep,
    direct_latency,
    format_latency_table,
    measured_latency,
    universal_latency,
)
from repro.workloads import example1, simple_purchase


class TestBaselines:
    def test_constants(self):
        assert direct_latency() == 1.0
        assert universal_latency() == 2.0


class TestMeasured:
    def test_simple_purchase_critical_path(self):
        # deposit(1) -> notify(1) -> deposit(1) -> releases(1) = 4 delays.
        assert measured_latency(simple_purchase()) == 4.0

    def test_example1_critical_path(self):
        # Two chained exchanges: the broker's purchase waits for the
        # consumer-side notify, and the delivery waits for the release.
        assert measured_latency(example1()) == 8.0

    def test_latency_parameter_scales(self):
        assert measured_latency(example1(), latency=2.0) == 16.0


class TestChainSweep:
    def test_linear_growth(self):
        rows = chain_latency_sweep(4)
        values = [r.decentralized for r in rows]
        deltas = [b - a for a, b in zip(values, values[1:])]
        assert len(set(deltas)) == 1  # constant increments = linear
        assert deltas[0] > 0

    def test_baselines_constant(self):
        for row in chain_latency_sweep(3):
            assert row.universal == 2.0
            assert row.direct == 1.0

    def test_slowdown_grows(self):
        rows = chain_latency_sweep(4)
        slowdowns = [r.slowdown_vs_universal for r in rows]
        assert slowdowns == sorted(slowdowns)
        assert slowdowns[-1] > slowdowns[0]

    def test_format_table(self):
        lines = format_latency_table(chain_latency_sweep(2))
        assert len(lines) == 4
        assert "decentralized" in lines[0]


class TestMetricsHooks:
    def test_measured_latency_lands_in_histogram(self):
        with metrics_scope() as tracer:
            duration = measured_latency(simple_purchase())
        stats = tracer.metrics.to_dict()
        histogram = stats["analysis.latency.duration"]
        assert histogram["count"] == 1
        assert histogram["total"] == duration

    def test_chain_sweep_counts_rows(self):
        with metrics_scope() as tracer:
            rows = chain_latency_sweep(3)
        stats = tracer.metrics.to_dict()
        assert stats["analysis.latency.chain_rows"] == len(rows) == 4
        assert stats["analysis.latency.duration"]["count"] == 4

    def test_no_tracer_no_side_effects(self):
        # Outside a scope the hook is a single None test; values agree.
        with metrics_scope():
            traced = measured_latency(example1())
        assert measured_latency(example1()) == traced
