"""Unit tests for the feasibility and indemnity sweep studies."""

from repro.analysis.feasibility_study import priority_sweep, trust_sweep
from repro.analysis.indemnity_study import (
    bundle_scaling,
    figure7_table,
    ordering_costs,
)


class TestPrioritySweep:
    def test_zero_priority_acyclic_is_fully_feasible(self):
        (row,) = priority_sweep(probabilities=[0.0], samples=20)
        assert row.feasible_fraction == 1.0

    def test_feasibility_declines_with_priority_density(self):
        rows = priority_sweep(probabilities=[0.0, 0.5, 1.0], samples=25)
        fractions = [r.feasible_fraction for r in rows]
        assert fractions[0] >= fractions[1] >= fractions[2]
        assert fractions[0] > fractions[2]

    def test_rows_carry_sample_counts(self):
        rows = priority_sweep(probabilities=[0.3], samples=7)
        assert rows[0].samples == 7
        assert 0 <= rows[0].feasible <= 7

    def test_deterministic(self):
        a = priority_sweep(probabilities=[0.5], samples=10, seed=3)
        b = priority_sweep(probabilities=[0.5], samples=10, seed=3)
        assert a == b


class TestTrustSweep:
    def test_zero_added_trust_unlocks_nothing(self):
        rows = trust_sweep(edge_counts=[0], samples=8)
        assert rows[0].unlocked == 0

    def test_trust_helps_in_expectation(self):
        rows = trust_sweep(edge_counts=[0, 8], samples=12)
        assert rows[-1].unlocked >= rows[0].unlocked

    def test_fraction_property(self):
        rows = trust_sweep(edge_counts=[2], samples=6)
        assert 0.0 <= rows[0].unlocked_fraction <= 1.0


class TestOrderingCosts:
    def test_figure7_permutation_totals(self):
        rows = ordering_costs((10.0, 20.0, 30.0))
        assert len(rows) == 6
        totals = sorted({r.total_cents for r in rows})
        # Uncovered-last piece determines the total: 70 / 80 / 90 dollars.
        assert totals == [7000, 8000, 9000]

    def test_every_ordering_uses_two_offers(self):
        for row in ordering_costs((10.0, 20.0, 30.0)):
            assert row.offers == 2

    def test_pair_bundle(self):
        rows = ordering_costs((10.0, 20.0))
        totals = sorted({r.total_cents for r in rows})
        assert totals == [1000, 2000]


class TestBundleScaling:
    def test_closed_forms(self):
        for row in bundle_scaling(max_k=5, base_price=10.0):
            s = row.total_price_cents
            assert row.greedy_cents == (row.k - 2) * s + 1000  # c_min = $10
            assert row.worst_cents == (row.k - 2) * s + row.k * 1000  # c_max

    def test_overshoot_shrinks_with_k(self):
        rows = bundle_scaling(max_k=6)
        overshoots = [r.overshoot for r in rows[1:]]  # k>=3
        assert overshoots == sorted(overshoots, reverse=True)


class TestFigure7Table:
    def test_table_mentions_paper_totals(self):
        text = "\n".join(figure7_table())
        assert "70.00" in text
        assert "90.00" in text


class TestIncompletenessGap:
    def test_reduction_never_unsound(self):
        from repro.analysis.feasibility_study import incompleteness_gap

        row = incompleteness_gap(samples=60, seed=2)
        assert row.unsound == 0

    def test_gap_exists_at_high_priority_density(self):
        from repro.analysis.feasibility_study import incompleteness_gap

        row = incompleteness_gap(samples=120, priority_probability=0.8, seed=0)
        assert row.gap > 0
        assert 0.0 <= row.gap_fraction <= 1.0

    def test_deterministic(self):
        from repro.analysis.feasibility_study import incompleteness_gap

        assert incompleteness_gap(samples=30, seed=5) == incompleteness_gap(
            samples=30, seed=5
        )
