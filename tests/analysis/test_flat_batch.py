"""The flat engine in the batch pipeline + the single-core pool warning."""

import warnings

import pytest

from repro.analysis import batch
from repro.analysis.batch import (
    batch_specs,
    check_feasibility_batch,
    effective_cpu_count,
    parallel_map,
)
from repro.analysis.chaos_study import ChaosConfig, ChaosReport, chaos_study
from repro.conformance.engine import FuzzConfig, run_fuzz
from repro.core.indemnity import minimal_indemnity_plan
from repro.errors import IndemnityError, ReproError
from repro.workloads import RandomProblemConfig, figure7


def _identity(x):
    return x


SPECS = batch_specs(
    60,
    RandomProblemConfig(n_principals=8, n_exchanges=5, priority_probability=0.5),
    seed=11,
)


class TestFlatEngineBatch:
    def test_flat_matches_indexed_serial(self):
        indexed = check_feasibility_batch(SPECS, engine="indexed")
        flat = check_feasibility_batch(SPECS, engine="flat")
        assert flat == indexed
        assert {v.feasible for v in flat} == {True, False}

    def test_flat_matches_indexed_pooled(self):
        serial = check_feasibility_batch(SPECS, engine="flat")
        pooled = check_feasibility_batch(SPECS, engine="flat", processes=2)
        assert pooled == serial

    def test_flat_persona_ablation(self):
        indexed = check_feasibility_batch(
            SPECS[:20], engine="indexed", enable_persona_clause=False
        )
        flat = check_feasibility_batch(
            SPECS[:20], engine="flat", enable_persona_clause=False
        )
        assert flat == indexed

    def test_flat_chunksize_is_block_size(self):
        # Any block size must give identical verdicts — blocks only change
        # how problems pack into arenas, never what comes out.
        baseline = check_feasibility_batch(SPECS[:30], engine="flat")
        for block in (1, 7, 64):
            assert (
                check_feasibility_batch(SPECS[:30], engine="flat", chunksize=block)
                == baseline
            )

    def test_unknown_engine_raises(self):
        with pytest.raises(ReproError, match="unknown engine 'bogus'"):
            check_feasibility_batch(SPECS[:2], engine="bogus")

    def test_indemnity_unknown_engine_raises(self):
        with pytest.raises(IndemnityError, match="unknown engine"):
            minimal_indemnity_plan(figure7(), engine="warp")

    def test_indemnity_flat_engine_matches(self):
        indexed = minimal_indemnity_plan(figure7())
        flat = minimal_indemnity_plan(figure7(), engine="flat")
        assert flat.total_cents == indexed.total_cents
        assert flat.feasible == indexed.feasible


class TestSingleCoreWarning:
    ITEMS = list(range(32))

    def test_pool_on_single_core_host_warns(self, monkeypatch):
        monkeypatch.setattr(batch, "effective_cpu_count", lambda: 1)
        with pytest.warns(RuntimeWarning, match="single CPU"):
            result = parallel_map(_identity, self.ITEMS, processes=2)
        assert result == self.ITEMS  # honored, just warned about

    def test_serial_path_never_warns(self, monkeypatch):
        monkeypatch.setattr(batch, "effective_cpu_count", lambda: 1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert parallel_map(_identity, self.ITEMS, processes=1) == self.ITEMS
            # processes=None on a single-core host resolves to 1 worker:
            # serial, silent.
            assert parallel_map(_identity, self.ITEMS) == self.ITEMS

    def test_multi_core_host_never_warns(self, monkeypatch):
        monkeypatch.setattr(batch, "effective_cpu_count", lambda: 4)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert parallel_map(_identity, self.ITEMS, processes=2) == self.ITEMS

    def test_effective_cpu_count_is_positive(self):
        assert effective_cpu_count() >= 1


class TestCpuCountInArtifacts:
    def test_chaos_report_records_engine_and_cpus(self):
        report = chaos_study(ChaosConfig(scenarios=10, seed=3))
        data = report.to_dict()
        assert data["engine"] == "indexed"
        assert data["process_cpus"] == effective_cpu_count()

    def test_chaos_flat_engine_matches_indexed(self):
        indexed = chaos_study(ChaosConfig(scenarios=12, seed=3))
        flat = chaos_study(ChaosConfig(scenarios=12, seed=3, engine="flat"))
        assert flat.to_dict()["engine"] == "flat"
        assert [v.to_dict() for v in flat.verdicts] == [
            v.to_dict() for v in indexed.verdicts
        ]

    def test_chaos_unknown_engine_raises(self):
        with pytest.raises(ReproError, match="unknown engine"):
            chaos_study(ChaosConfig(scenarios=2, engine="bogus"))

    def test_fuzz_report_records_cpus_and_flat_arm(self):
        report = run_fuzz(FuzzConfig(cases=4, simulate=False), processes=1)
        data = report.to_dict()
        assert data["process_cpus"] == effective_cpu_count()
        assert data["flat_arm"] is True


def test_chaos_report_roundtrips_with_engine(tmp_path):
    report = chaos_study(ChaosConfig(scenarios=6, seed=9, engine="flat"))
    assert isinstance(report, ChaosReport)
    keys = set(report.to_dict())
    assert {"engine", "process_cpus", "verdicts", "violation_count"} <= keys
