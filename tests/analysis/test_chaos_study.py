"""Tests for the chaos study: determinism, safety, and the differential arm."""

from repro.analysis.chaos_study import (
    ChaosConfig,
    ChaosReport,
    ChaosVerdict,
    chaos_scenarios,
    chaos_study,
    _run_scenario,
)
from repro.sim.faults import FaultConfig


def _config(n=40, seed=0, **faults):
    return ChaosConfig(scenarios=n, seed=seed, faults=FaultConfig(**faults))


class TestChaosStudy:
    def test_zero_violations_for_feasible_protocol_runs(self):
        report = chaos_study(_config(n=60, seed=0), processes=1)
        assert report.violation_count == 0
        assert report.unsafe_scenarios == ()

    def test_differential_baseline_detects_harm(self):
        report = chaos_study(_config(n=60, seed=0), processes=1)
        assert report.baseline_violations >= 1
        assert report.differential_ok

    def test_serial_and_pooled_verdicts_identical(self):
        config = _config(n=24, seed=3)
        serial = chaos_study(config, processes=1)
        pooled = chaos_study(config, processes=2)
        assert serial.verdicts == pooled.verdicts
        assert serial.metrics == pooled.metrics
        assert serial.metrics_digest() == pooled.metrics_digest()

    def test_same_seed_reproduces_same_report(self):
        a = chaos_study(_config(n=20, seed=9), processes=1)
        b = chaos_study(_config(n=20, seed=9), processes=1)
        assert a.verdicts == b.verdicts

    def test_different_seeds_differ(self):
        a = chaos_study(_config(n=20, seed=1), processes=1)
        b = chaos_study(_config(n=20, seed=2), processes=1)
        assert a.verdicts != b.verdicts

    def test_scenarios_pin_their_seeds(self):
        cells = chaos_scenarios(_config(n=10, seed=4))
        again = chaos_scenarios(_config(n=10, seed=4))
        assert cells == again
        assert len({c.fault_seed for c in cells}) > 1

    def test_single_scenario_is_replayable_from_its_row(self):
        config = _config(n=12, seed=6)
        report = chaos_study(config, processes=1)
        row = next(v for v in report.verdicts if v.simulated)
        cell = chaos_scenarios(config)[row.index]
        assert cell.problem_seed == row.problem_seed
        assert cell.fault_seed == row.fault_seed
        replay = _run_scenario(cell)
        assert replay == row

    def test_report_serializes(self):
        import json

        report = chaos_study(_config(n=10, seed=0), processes=1)
        blob = json.dumps(report.to_dict())
        assert '"violation_count": 0' in blob

    def test_infeasible_problems_recorded_not_simulated(self):
        from repro.workloads.random_graphs import RandomProblemConfig

        config = ChaosConfig(
            scenarios=30,
            seed=0,
            problems=RandomProblemConfig(priority_probability=1.0),
        )
        report = chaos_study(config, processes=1)
        skipped = [v for v in report.verdicts if not v.feasible]
        assert skipped, "a priority-saturated sweep must hit infeasible cases"
        assert all(not v.simulated and v.recovery == "not-run" for v in skipped)

    def test_metrics_digest_reported_and_replay_stable(self):
        a = chaos_study(_config(n=12, seed=5), processes=1)
        b = chaos_study(_config(n=12, seed=5), processes=1)
        assert a.metrics_digest() == b.metrics_digest()
        assert a.metrics_digest() in "\n".join(a.describe())
        assert a.to_dict()["metrics_digest"] == a.metrics_digest()
        assert a.to_dict()["process_cpus"] >= 1

    def test_violating_verdict_carries_its_message_trace(self):
        # The sweeps above prove the theorem holds (zero violations), so the
        # causal-trace attachment can only be exercised synthetically: build
        # a violating verdict and check the report renders the wire's story.
        trace = ("t=0 send #1 c->t pay", "t=1 drop #1", "t=2 retransmit #1")
        verdict = ChaosVerdict(
            index=0,
            problem_seed=0.0,
            fault_seed=1,
            fault_digest="cafe",
            feasible=True,
            simulated=True,
            safe=False,
            violations=("honest party c lost custody",),
            recovery="mixed",
            silent_parties=(),
            crashed_parties=("t",),
            messages=1,
            retransmits=1,
            dropped=1,
            duplicates=0,
            deferred=0,
            abandoned=0,
            stranded=0,
            quiescent=True,
            duration=3.0,
            baseline_ok=True,
            message_trace=trace,
        )
        report = ChaosReport(config=_config(n=1), verdicts=(verdict,))
        text = "\n".join(report.describe())
        assert "VIOLATION scenario #0" in text
        for line in trace:
            assert line in text
        assert report.to_dict()["verdicts"][0]["message_trace"] == list(trace)

    def test_recovery_paths_cover_reversal(self):
        # A crash-heavy sweep must exercise the §2.5 reversal path, not just
        # the happy one.
        report = chaos_study(
            _config(n=80, seed=0, crash_probability=0.9,
                    permanent_silence_probability=0.8),
            processes=1,
        )
        counts = report.recovery_counts
        assert counts.get("complete", 0) > 0
        assert counts.get("reversed", 0) + counts.get("mixed", 0) > 0
        assert report.violation_count == 0
