"""Greedy shrinking: smaller problem, same failure."""

from repro.conformance.shrink import shrink_problem
from repro.conformance.transforms import assemble, exchange_records
from repro.errors import ReproError
from repro.workloads import poor_broker, simple_purchase


def infeasible(problem) -> bool:
    return not problem.feasibility().feasible


def padded_poor_broker():
    """The poor-broker core plus an unrelated (feasible) side sale and an
    irrelevant trust edge — everything the shrinker should strip away."""
    padding = simple_purchase()
    records = exchange_records(poor_broker()) + exchange_records(padding)
    parties = list(padding.interaction.principals)
    return assemble("padded-poor-broker", records, ((parties[0], parties[1]),))


class TestShrink:
    def test_strips_padding_down_to_the_infeasible_core(self):
        problem = padded_poor_broker()
        assert infeasible(problem)
        minimal = shrink_problem(problem, infeasible)
        assert infeasible(minimal)
        # The side sale and the trust edge are gone; the double-red
        # conjunction remains.
        assert len(minimal.interaction.trusted_components) == 2
        assert len(minimal.trust) == 0

    def test_result_is_a_local_minimum(self, poor):
        minimal = shrink_problem(poor, infeasible)
        assert infeasible(minimal)
        # poor-broker's core is the two-exchange double-red conjunction:
        # dropping either exchange (or any red mark) makes it feasible.
        assert len(minimal.interaction.trusted_components) == 2
        assert len(minimal.interaction.priority_edges) == 2

    def test_predicate_never_sees_invalid_problems(self, ex2):
        seen = []

        def recording(problem) -> bool:
            seen.append(problem)
            problem.validate()
            return infeasible(problem)

        shrink_problem(ex2, recording)
        assert seen  # the shrinker did explore candidates

    def test_raising_predicate_disqualifies_candidate_only(self, ex2):
        calls = {"n": 0}

        def flaky(problem) -> bool:
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                raise ReproError("synthetic oracle failure")
            return infeasible(problem)

        minimal = shrink_problem(ex2, flaky)
        assert infeasible(minimal)

    def test_feasible_fixed_point_returns_input(self, ex1):
        # Predicate fails everywhere → nothing to keep → input unchanged.
        assert shrink_problem(ex1, lambda p: False) is ex1
