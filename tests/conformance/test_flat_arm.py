"""The conformance engine's third differential arm: the compiled flat core.

Mirrors ``test_self_check.py``'s philosophy — a clean stack must produce a
populated, discrepancy-free flat verdict on every case, and a deliberately
broken flat engine must be *caught*.  Everything runs with ``processes=1``:
a monkeypatch does not cross the process-pool boundary.
"""

import pytest

from repro.conformance.engine import FuzzConfig, check_problem, run_fuzz
from repro.conformance.oracles import cross_check
from repro.core import flatcore
from repro.workloads import example1, example2, example2_source_trusts_broker


class TestCleanFlatArm:
    def test_fuzz_populates_flat_verdicts(self):
        report = run_fuzz(
            FuzzConfig(cases=12, seed=5, simulate=False), processes=1
        )
        assert report.discrepant == ()
        for result in report.results:
            assert result.verdicts.flat_feasible is not None
            assert (
                result.verdicts.flat_feasible
                == result.verdicts.reduction_feasible
            )

    def test_flat_arm_off_leaves_verdict_none(self):
        report = run_fuzz(
            FuzzConfig(cases=6, seed=5, simulate=False, flat_arm=False),
            processes=1,
        )
        assert report.discrepant == ()
        for result in report.results:
            assert result.verdicts.flat_feasible is None
        assert report.to_dict()["flat_arm"] is False

    def test_cross_check_examples(self):
        for problem in (example1(), example2(), example2_source_trusts_broker()):
            result = cross_check(problem, run_simulation=False)
            assert result.ok, [str(d) for d in result.discrepancies]
            assert result.verdicts.to_dict()["flat"] is not None

    def test_digest_stable_across_pool_sizes(self):
        config = FuzzConfig(cases=10, seed=2, simulate=False)
        serial = run_fuzz(config, processes=1)
        pooled = run_fuzz(config, processes=2)
        assert serial.digest() == pooled.digest()


class TestPlantedFlatBug:
    @pytest.fixture
    def broken_flat_strategy(self, monkeypatch):
        """Make the flat parity engine deaf to the requested strategy."""
        real = flatcore.reduce_graph_compiled

        def always_fifo(compiled, strategy="fifo", rng=None, enable_persona_clause=True):
            return real(
                compiled, strategy="fifo", enable_persona_clause=enable_persona_clause
            )

        monkeypatch.setattr(flatcore, "reduce_graph_compiled", always_fifo)

    @pytest.fixture
    def broken_flat_verdict(self, monkeypatch):
        """Make the free-order verdict loop lie about feasibility."""
        real = flatcore.check_feasibility_flat

        def always_feasible(graph, *, enable_persona_clause=True):
            verdict = real(graph, enable_persona_clause=enable_persona_clause)
            return flatcore.FlatVerdict(
                feasible=True,
                steps=verdict.steps,
                remaining=0,
                blockages=0,
            )

        monkeypatch.setattr(flatcore, "check_feasibility_flat", always_feasible)

    def test_strategy_deafness_is_detected(self, broken_flat_strategy):
        report = run_fuzz(
            FuzzConfig(cases=20, seed=7, simulate=False), processes=1
        )
        flagged = [
            r
            for r in report.discrepant
            if any(d.kind == "flat-divergence" for d in r.discrepancies)
        ]
        assert flagged, "a strategy-deaf flat engine must diverge on lifo/random"

    def test_verdict_lie_is_detected(self, broken_flat_verdict):
        result = check_problem(example2(), run_simulation=False)
        kinds = {d.kind for d in result.discrepancies}
        assert "flat-divergence" in kinds

    def test_breaking_only_flat_never_flags_other_arms(self, broken_flat_verdict):
        result = check_problem(example2(), run_simulation=False)
        kinds = {d.kind for d in result.discrepancies}
        assert "engine-divergence" not in kinds
        assert "confluence" not in kinds
