"""Replay every corpus fixture through the full oracle stack.

Each ``tests/corpus/*.json`` file carries a problem as spec text plus the
verdicts observed when it was recorded.  The regression contract: recompiling
and re-checking must produce zero discrepancies and the same feasibility
verdict.  Anything that breaks a fixture here has changed observable
semantics somewhere in the stack.
"""

import glob
import os

import pytest

from repro.conformance.corpus import load_corpus_file
from repro.conformance.engine import replay_corpus_file

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "..", "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_populated():
    assert len(CORPUS_FILES) >= 10


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_corpus_replay(path):
    case = load_corpus_file(path)
    result = replay_corpus_file(path)
    assert result.ok, [str(d) for d in result.discrepancies]
    if case.expected_feasible is not None:
        assert result.verdicts.reduction_feasible == case.expected_feasible
    if case.verdicts:
        assert result.verdicts.to_dict() == case.verdicts
