"""Metamorphic relations hold on every worked example."""

import random

import pytest

from repro.conformance.metamorphic import (
    check_indemnity_monotonicity,
    check_permutation_invariance,
    check_persona_toggle,
    check_relabel_invariance,
    check_trust_monotonicity,
    metamorphic_suite,
)
from repro.workloads import (
    example1,
    example2,
    example2_broker_trusts_source,
    example2_source_trusts_broker,
    figure7,
    poor_broker,
    simple_purchase,
)
from repro.workloads.chains import resale_chain, star

ALL_EXAMPLES = [
    example1,
    example2,
    example2_source_trusts_broker,
    example2_broker_trusts_source,
    figure7,
    poor_broker,
    simple_purchase,
    lambda: resale_chain(3),
    lambda: star(3),
]


@pytest.mark.parametrize("build", ALL_EXAMPLES)
def test_suite_holds_on_worked_examples(build):
    assert metamorphic_suite(build(), seed=11) == []


def test_relabel_invariance(ex1, ex2, fig7):
    for problem in (ex1, ex2, fig7):
        assert check_relabel_invariance(problem) == []


def test_permutation_invariance(ex1, ex2):
    for problem in (ex1, ex2):
        assert check_permutation_invariance(problem, random.Random(2)) == []


def test_trust_monotonicity(ex2):
    assert check_trust_monotonicity(ex2, random.Random(4), additions=5) == []


def test_indemnity_monotonicity(fig7):
    assert check_indemnity_monotonicity(fig7) == []


def test_persona_toggle(ex2_variant1, ex2_variant2):
    assert check_persona_toggle(ex2_variant1) == []
    assert check_persona_toggle(ex2_variant2) == []
