"""Unit tests for the problem rebuilders (decompose → transform → assemble)."""

import random

import pytest

from repro.conformance.transforms import (
    ConformanceError,
    assemble,
    exchange_records,
    permute_exchanges,
    problems_equivalent,
    relabel_problem,
)
from repro.core.interaction import InteractionGraph
from repro.core.items import document
from repro.core.parties import broker, trusted
from repro.core.problem import ExchangeProblem


class TestExchangeRecords:
    def test_example1_decomposes_to_two_records(self, ex1):
        records = exchange_records(ex1)
        assert len(records) == 2
        assert all(len(r.members) == 2 for r in records)

    def test_priority_markings_captured(self, ex1):
        records = exchange_records(ex1)
        assert sum(len(r.priority) for r in records) == len(
            ex1.interaction.priority_edges
        )

    def test_multiparty_raises(self):
        graph = InteractionGraph()
        parties = [broker(f"A{i}") for i in range(3)]
        for p in parties:
            graph.add_principal(p)
        hub = graph.add_trusted(trusted("Hub"))
        graph.add_multi_exchange(
            hub, [(p, document(f"s{i}")) for i, p in enumerate(parties)]
        )
        problem = ExchangeProblem("ring", graph).validate(allow_multiparty=True)
        with pytest.raises(ConformanceError):
            exchange_records(problem)


class TestAssemble:
    def test_roundtrip_is_equivalent(self, ex1):
        rebuilt = assemble(
            ex1.name, exchange_records(ex1), tuple(ex1.trust)
        )
        assert problems_equivalent(ex1, rebuilt)

    def test_roundtrip_preserves_feasibility(self, ex2_variant1):
        rebuilt = assemble(
            ex2_variant1.name,
            exchange_records(ex2_variant1),
            tuple(ex2_variant1.trust),
        )
        assert rebuilt.feasibility().feasible == ex2_variant1.feasibility().feasible

    def test_orphan_trust_pairs_dropped(self, ex1, parties):
        ghost = (parties["c"], parties["b"])  # neither appears in ex1
        rebuilt = assemble(ex1.name, exchange_records(ex1), (ghost,))
        assert len(rebuilt.trust) == 0


class TestRelabel:
    def test_relabel_renames_every_party(self, ex1):
        variant = relabel_problem(ex1)
        assert all(
            p.name.startswith("RL") for p in variant.interaction.parties
        )

    def test_relabel_preserves_verdict(self, ex1, ex2, poor):
        for problem in (ex1, ex2, poor):
            assert (
                relabel_problem(problem).feasibility().feasible
                == problem.feasibility().feasible
            )

    def test_relabel_is_not_equivalent_to_original(self, ex1):
        assert not problems_equivalent(ex1, relabel_problem(ex1))


class TestPermute:
    def test_permutation_is_structurally_equivalent(self, ex1):
        variant = permute_exchanges(ex1, random.Random(3))
        assert problems_equivalent(ex1, variant)

    def test_permutation_preserves_verdict(self, ex2, fig7):
        for problem in (ex2, fig7):
            variant = permute_exchanges(problem, random.Random(5))
            assert variant.feasibility().feasible == problem.feasibility().feasible


class TestEquivalence:
    def test_reflexive(self, ex1):
        assert problems_equivalent(ex1, ex1)

    def test_distinguishes_different_problems(self, ex1, ex2):
        assert not problems_equivalent(ex1, ex2)
