"""The fuzz driver: determinism, pooling, corpus plumbing."""

import os

import pytest

from repro.conformance.corpus import load_corpus_file
from repro.conformance.engine import (
    FLOW_RULE_CODES,
    CaseResult,
    FuzzConfig,
    FuzzReport,
    case_specs,
    check_problem,
    flow_preflight,
    generate_case_problem,
    run_fuzz,
    shrink_counterexamples,
)
from repro.conformance.oracles import Discrepancy
from repro.errors import StaticCheckError
from repro.spec.formatter import format_problem


class TestFlowPreflight:
    def test_the_real_runtime_passes_at_head(self):
        flow_preflight()  # repro/net must satisfy its own disciplines

    def test_planted_violation_fails_fast(self, tmp_path):
        bad = tmp_path / "net" / "leaky_node.py"
        bad.parent.mkdir()
        bad.write_text(
            "class Node:\n"
            "    def __init__(self, wal, writer):\n"
            "        self.wal = wal\n"
            "        self.writer = writer\n"
            "\n"
            "    def leak(self, key):\n"
            "        self.writer.write({'type': 'act', 'key': key})\n",
            encoding="utf-8",
        )
        with pytest.raises(StaticCheckError, match="flow preflight failed"):
            flow_preflight(paths=(str(bad),))
        try:
            flow_preflight(paths=(str(bad),))
        except StaticCheckError as exc:
            assert "NET001" in str(exc)

    def test_run_fuzz_honors_the_preflight_flag(self, monkeypatch):
        import repro.conformance.engine as engine_module

        def broken() -> None:
            raise StaticCheckError("flow preflight failed (planted)")

        monkeypatch.setattr(engine_module, "flow_preflight", broken)
        with pytest.raises(StaticCheckError):
            run_fuzz(FuzzConfig(cases=1, simulate=False), processes=1)
        report = run_fuzz(
            FuzzConfig(cases=1, simulate=False, preflight=False), processes=1
        )
        assert len(report.results) == 1

    def test_flow_rule_codes_are_the_flow_family(self):
        assert FLOW_RULE_CODES == ("ASY001", "ASY002", "LEDG001", "NET001")


class TestCaseSpecs:
    def test_seeds_are_stable(self):
        config = FuzzConfig(cases=10, seed=42)
        assert case_specs(config) == case_specs(config)

    def test_seeds_depend_on_run_seed(self):
        a = case_specs(FuzzConfig(cases=5, seed=1))
        b = case_specs(FuzzConfig(cases=5, seed=2))
        assert [s.seed for s in a] != [s.seed for s in b]

    def test_generated_problems_are_reproducible(self):
        spec = case_specs(FuzzConfig(cases=1, seed=9))[0]
        one = generate_case_problem(spec)
        two = generate_case_problem(spec)
        assert format_problem(one) == format_problem(two)


class TestRunFuzz:
    def test_small_run_is_clean(self):
        report = run_fuzz(FuzzConfig(cases=8, seed=7))
        assert len(report.results) == 8
        assert report.discrepant == ()

    def test_serial_equals_pooled(self):
        config = FuzzConfig(cases=10, seed=13, simulate=False)
        serial = run_fuzz(config, processes=1)
        pooled = run_fuzz(config, processes=2)
        assert serial.digest() == pooled.digest()
        assert serial.metrics == pooled.metrics
        assert serial.metrics_digest() == pooled.metrics_digest()

    def test_describe_reports_digest(self):
        report = run_fuzz(FuzzConfig(cases=3, seed=0, simulate=False))
        text = "\n".join(report.describe())
        assert report.digest() in text
        assert "discrepancies: 0" in text


class TestCorpusPlumbing:
    def test_shrink_counterexamples_writes_replayable_files(self, ex2, tmp_path):
        # Fabricate a discrepant result carrying a real problem; the kind is
        # synthetic, so shrinking keeps the problem as-is and the corpus
        # writer must still produce a loadable file.
        result = check_problem(ex2)
        fake = CaseResult(
            index=0,
            seed=5,
            problem_name=ex2.name,
            verdicts=result.verdicts,
            discrepancies=(
                Discrepancy("synthetic", "injected for plumbing test"),
            ),
            spec_text=format_problem(ex2),
        )
        report = FuzzReport(config=FuzzConfig(cases=1, seed=5), results=(fake,))
        paths = shrink_counterexamples(report, str(tmp_path))
        assert len(paths) == 1
        assert os.path.exists(paths[0])
        case = load_corpus_file(paths[0])
        assert case.kinds == ("synthetic",)
        assert case.seed == 5
        replayed = check_problem(case.problem, seed=case.seed)
        assert replayed.ok  # ex2 itself is conformant
