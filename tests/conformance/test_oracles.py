"""The differential oracle stack on the paper's worked examples."""

from repro.conformance.oracles import cross_check, oversold_documents, trace_key
from repro.workloads.chains import oversale, resale_chain


class TestCrossCheck:
    def test_example1_agrees_everywhere(self, ex1):
        result = cross_check(ex1)
        assert result.ok
        assert result.verdicts.reduction_feasible
        assert result.verdicts.reference_feasible
        assert result.verdicts.petri_coverable
        assert result.verdicts.simulated
        assert result.verdicts.simulation_safe

    def test_example2_agrees_on_infeasibility(self, ex2):
        result = cross_check(ex2)
        assert result.ok
        assert not result.verdicts.reduction_feasible
        assert not result.verdicts.simulated

    def test_persona_variant(self, ex2_variant1):
        result = cross_check(ex2_variant1)
        assert result.ok
        assert result.verdicts.reduction_feasible

    def test_poor_broker_infeasible(self, poor):
        result = cross_check(poor)
        assert result.ok
        assert not result.verdicts.reduction_feasible

    def test_simulation_can_be_skipped(self, ex1):
        result = cross_check(ex1, run_simulation=False)
        assert result.ok
        assert not result.verdicts.simulated
        assert result.verdicts.simulation_safe is None


class TestOversale:
    def test_oversold_documents_detects_aliasing(self):
        assert oversold_documents(oversale(2)) == ("d",)

    def test_resale_is_not_oversale(self):
        assert oversold_documents(resale_chain(3)) == ()

    def test_oversale_is_documented_not_flagged(self):
        """The possession-blind verdict (chains.oversale docstring): reduction
        says feasible, Petri and the scheduler say no — by design."""
        result = cross_check(oversale(2))
        assert result.ok
        assert result.verdicts.oversold
        assert result.verdicts.reduction_feasible
        assert not result.verdicts.petri_coverable
        assert not result.verdicts.simulated


class TestTraceKey:
    def test_trace_key_is_deterministic(self, ex1):
        a = trace_key(ex1.reduce())
        b = trace_key(ex1.reduce())
        assert a == b

    def test_trace_key_distinguishes_problems(self, ex1, poor):
        assert trace_key(ex1.reduce()) != trace_key(poor.reduce())
