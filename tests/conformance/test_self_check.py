"""The conformance engine must catch a deliberately planted bug.

A test harness that has never failed proves nothing.  Here we break the
reference engine's red-edge rule (pretend no red edge ever blocks — i.e.
ablate §4.2's pre-emption check), run a small fuzz sweep, and require that
(a) the differential oracle flags the divergence and (b) the shrinker
reduces a flagged case to the minimal pre-emption core.

Everything runs with ``processes=1``: a monkeypatch does not cross the
process-pool boundary.
"""

import pytest

from repro.conformance.engine import (
    FuzzConfig,
    _still_failing,
    run_fuzz,
)
from repro.conformance.shrink import shrink_problem
from repro.core import reduction_reference
from repro.spec.compiler import load


@pytest.fixture
def broken_reference(monkeypatch):
    """Ablate red-edge pre-emption in the reference engine only."""
    monkeypatch.setattr(
        reduction_reference.ReferenceReductionEngine,
        "blocking_red_edges",
        lambda self, edge: (),
    )


def test_planted_bug_is_detected_and_shrinks(broken_reference):
    report = run_fuzz(
        FuzzConfig(cases=20, seed=7, simulate=False), processes=1
    )
    flagged = [
        r
        for r in report.discrepant
        if any(d.kind == "engine-divergence" for d in r.discrepancies)
    ]
    assert flagged, "a broken red-edge rule must produce engine divergences"

    case = flagged[0]
    problem = load(case.spec_text)
    minimal = shrink_problem(
        problem, _still_failing(case.seed, frozenset({"engine-divergence"}))
    )
    # The minimal divergence between "red edges block" and "they don't" is a
    # two-exchange chain with a single red mark and no trust to waive it.
    assert len(minimal.interaction.trusted_components) <= 2
    assert len(minimal.interaction.priority_edges) >= 1
    assert len(minimal.trust) == 0


def test_clean_engine_reports_nothing_on_same_seed():
    report = run_fuzz(
        FuzzConfig(cases=20, seed=7, simulate=False), processes=1
    )
    assert report.discrepant == ()
