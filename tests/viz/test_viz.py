"""Unit tests for the DOT and text renderers."""

from repro.viz import (
    interaction_text,
    interaction_to_dot,
    sequencing_text,
    sequencing_to_dot,
    trace_text,
)
from repro.workloads import example1, example2


class TestInteractionDot:
    def test_shapes_match_figures(self):
        dot = interaction_to_dot(example1().interaction)
        assert "shape=ellipse" in dot  # principals are circles
        assert "shape=box" in dot  # trusted components are squares
        assert dot.startswith('graph "interaction"')
        assert dot.rstrip().endswith("}")

    def test_priority_edges_red(self):
        dot = interaction_to_dot(example1().interaction)
        assert "color=red" in dot

    def test_all_parties_present(self):
        dot = interaction_to_dot(example2().interaction)
        for name in ("Consumer", "Broker1", "Source2", "Trusted4"):
            assert name in dot


class TestSequencingDot:
    def test_hexagon_commitments(self):
        dot = sequencing_to_dot(example1().sequencing_graph())
        assert "shape=hexagon" in dot
        assert dot.count("shape=hexagon") == 4

    def test_red_edge_styled(self):
        dot = sequencing_to_dot(example1().sequencing_graph())
        assert "style=bold, color=red" in dot.replace('"', "")

    def test_trace_annotates_removed_edges(self):
        problem = example1()
        trace = problem.reduce()
        dot = sequencing_to_dot(problem.sequencing_graph(), trace=trace)
        assert "style=dashed" in dot
        assert 'label="1"' in dot  # first elimination number

    def test_persona_labelled(self):
        from repro.workloads import example2_source_trusts_broker

        dot = sequencing_to_dot(example2_source_trusts_broker().sequencing_graph())
        assert "persona" in dot


class TestTextRenderers:
    def test_interaction_text(self):
        lines = interaction_text(example1().interaction)
        text = "\n".join(lines)
        assert "principals:" in text
        assert "Trusted1:" in text
        assert "priority (red): Broker--Trusted1" in text

    def test_sequencing_text(self):
        text = "\n".join(sequencing_text(example1().sequencing_graph()))
        assert "4 commitments" in text
        assert "[RED  ]" in text

    def test_trace_text_feasible(self):
        text = "\n".join(trace_text(example1().reduce()))
        assert "FEASIBLE" in text
        assert "Rule #1" in text

    def test_trace_text_infeasible_lists_impasse(self):
        text = "\n".join(trace_text(example2().reduce()))
        assert "NOT SHOWN FEASIBLE" in text
        assert "impasse" in text


class TestPetriDot:
    def test_renders_places_and_transitions(self):
        from repro.petri import translate
        from repro.viz import petri_to_dot
        from repro.workloads import simple_purchase

        net, _ = translate(simple_purchase())
        dot = petri_to_dot(net)
        assert dot.startswith('digraph "petri"')
        assert "shape=ellipse" in dot and "shape=box" in dot
        assert "holds:Customer" in dot
        assert "complete:Trusted" in dot

    def test_initial_marking_annotated(self):
        from repro.petri import translate
        from repro.viz import petri_to_dot
        from repro.workloads import simple_purchase

        net, _ = translate(simple_purchase())
        dot = petri_to_dot(net)
        assert "fillcolor=lightyellow" in dot

    def test_witness_highlighted(self):
        from repro.petri import exchange_completable, translate
        from repro.viz import petri_to_dot
        from repro.workloads import simple_purchase

        problem = simple_purchase()
        net, _ = translate(problem)
        witness = exchange_completable(problem).witness
        dot = petri_to_dot(net, highlight=witness)
        assert "color=red" in dot
