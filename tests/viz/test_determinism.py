"""Renderer determinism: same problem + seed → byte-identical output.

The corpus files, the fuzz digests, and CI's serial-vs-pooled comparison all
assume that every derived artifact of a seeded problem is a pure function of
that seed.  These tests pin that down for the DOT and text renderers (two
independent builds of the same seed must render identically) and for the
spec formatter (format → parse → compile → format is a fixed point).
"""

import pytest

from repro.spec.compiler import load
from repro.spec.formatter import format_problem
from repro.viz.ascii_art import interaction_text, sequencing_text, trace_text
from repro.viz.dot import interaction_to_dot, petri_to_dot, sequencing_to_dot
from repro.petri.translate import translate
from repro.workloads import example1, example2, figure7
from repro.workloads.random_graphs import RandomProblemConfig, random_problem

SEEDS = [0, 7, 42, 1234]


def build(seed: int):
    return random_problem(RandomProblemConfig(n_principals=6, n_exchanges=4), seed=seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_dot_renderers_are_deterministic(seed):
    one, two = build(seed), build(seed)
    assert interaction_to_dot(one.interaction) == interaction_to_dot(two.interaction)
    assert sequencing_to_dot(one.sequencing_graph()) == sequencing_to_dot(
        two.sequencing_graph()
    )
    assert sequencing_to_dot(
        one.sequencing_graph(), trace=one.reduce()
    ) == sequencing_to_dot(two.sequencing_graph(), trace=two.reduce())


@pytest.mark.parametrize("seed", SEEDS)
def test_petri_dot_is_deterministic(seed):
    net_one, _ = translate(build(seed))
    net_two, _ = translate(build(seed))
    assert petri_to_dot(net_one) == petri_to_dot(net_two)


@pytest.mark.parametrize("seed", SEEDS)
def test_text_renderers_are_deterministic(seed):
    one, two = build(seed), build(seed)
    assert interaction_text(one.interaction) == interaction_text(two.interaction)
    assert sequencing_text(one.sequencing_graph()) == sequencing_text(
        two.sequencing_graph()
    )
    assert trace_text(one.reduce()) == trace_text(two.reduce())


def test_different_seeds_render_differently():
    assert interaction_to_dot(build(0).interaction) != interaction_to_dot(
        build(1).interaction
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_spec_formatter_fixed_point_on_random_problems(seed):
    problem = build(seed)
    text = format_problem(problem)
    assert format_problem(load(text)) == text


@pytest.mark.parametrize("builder", [example1, example2, figure7])
def test_spec_formatter_fixed_point_on_worked_examples(builder):
    text = format_problem(builder())
    assert format_problem(load(text)) == text
