"""Unit tests for the canonical example fixtures (Figures 1, 2, 7)."""

from repro.workloads import (
    example1,
    example2,
    example2_broker_trusts_source,
    example2_source_trusts_broker,
    figure7,
    poor_broker,
    simple_purchase,
)


class TestExample1Shape:
    def test_parties_match_figure1(self, ex1):
        names = {p.name for p in ex1.interaction.principals}
        assert names == {"Consumer", "Broker", "Producer"}
        assert {t.name for t in ex1.interaction.trusted_components} == {
            "Trusted1",
            "Trusted2",
        }

    def test_four_edges(self, ex1):
        assert len(ex1.interaction.edges) == 4

    def test_bipartite_chain_degrees(self, ex1):
        ig = ex1.interaction
        degrees = {p.name: ig.degree(p) for p in ig.parties}
        assert degrees == {
            "Consumer": 1,
            "Broker": 2,
            "Producer": 1,
            "Trusted1": 2,
            "Trusted2": 2,
        }

    def test_priority_on_sale_side(self, ex1):
        (priority,) = ex1.interaction.priority_edges
        assert priority.principal.name == "Broker"
        assert priority.trusted.name == "Trusted1"

    def test_broker_money_flows(self, ex1):
        ig = ex1.interaction
        retail = ig.find_edge("Consumer", "Trusted1").provides
        wholesale = ig.find_edge("Broker", "Trusted2").provides
        assert retail.cents == 1200
        assert wholesale.cents == 1000

    def test_custom_prices(self):
        p = example1(retail=99.0, wholesale=1.0)
        assert p.interaction.find_edge("Consumer", "Trusted1").provides.cents == 9900


class TestExample2Shape:
    def test_parties_match_figure2(self, ex2):
        names = {p.name for p in ex2.interaction.principals}
        assert names == {"Consumer", "Broker1", "Broker2", "Source1", "Source2"}
        assert len(ex2.interaction.trusted_components) == 4

    def test_eight_edges_two_priorities(self, ex2):
        assert len(ex2.interaction.edges) == 8
        assert len(ex2.interaction.priority_edges) == 2

    def test_consumer_degree_two(self, ex2):
        ig = ex2.interaction
        c = next(p for p in ig.principals if p.name == "Consumer")
        assert ig.degree(c) == 2

    def test_documents_distinct(self, ex2):
        ig = ex2.interaction
        d1 = ig.find_edge("Broker1", "Trusted1").provides
        d2 = ig.find_edge("Broker2", "Trusted3").provides
        assert d1 != d2


class TestVariants:
    def test_variant_names(self):
        assert "source1-trusts-broker1" in example2_source_trusts_broker().name
        assert "broker1-trusts-source1" in example2_broker_trusts_source().name

    def test_variant1_trust_direction(self, ex2_variant1):
        trust_pairs = {(a.name, b.name) for a, b in ex2_variant1.trust}
        assert trust_pairs == {("Source1", "Broker1")}

    def test_variant2_trust_direction(self, ex2_variant2):
        trust_pairs = {(a.name, b.name) for a, b in ex2_variant2.trust}
        assert trust_pairs == {("Broker1", "Source1")}

    def test_poor_broker_double_priority(self, poor):
        agents = [e.trusted.name for e in poor.interaction.priority_edges]
        assert sorted(agents) == ["Trusted1", "Trusted2"]


class TestFigure7Shape:
    def test_parties(self, fig7):
        ig = fig7.interaction
        assert len(ig.principals) == 7  # consumer + 3 brokers + 3 sources
        assert len(ig.trusted_components) == 6
        assert len(ig.edges) == 12

    def test_paper_prices(self, fig7):
        ig = fig7.interaction
        assert ig.find_edge("Consumer", "Trusted1").provides.cents == 1000
        assert ig.find_edge("Consumer", "Trusted3").provides.cents == 2000
        assert ig.find_edge("Consumer", "Trusted5").provides.cents == 3000

    def test_custom_prices(self):
        p = figure7(prices=(1.0, 2.0, 3.0))
        assert p.interaction.find_edge("Consumer", "Trusted5").provides.cents == 300


class TestSimplePurchase:
    def test_minimal_shape(self, tiny):
        assert len(tiny.interaction.edges) == 2
        assert len(tiny.interaction.trusted_components) == 1

    def test_price_parameter(self):
        p = simple_purchase(price=3.5)
        assert p.interaction.find_edge("Customer", "Trusted").provides.cents == 350

    def test_all_fixtures_validate(self):
        for factory in (
            example1,
            example2,
            poor_broker,
            figure7,
            simple_purchase,
            example2_source_trusts_broker,
            example2_broker_trusts_source,
        ):
            factory().validate()
