"""Tests for the star and over-sale workloads, and multi-party Petri nets."""

import pytest

from repro.errors import InfeasibleExchangeError, ModelError
from repro.petri import exchange_completable
from repro.sim import evaluate_safety, simulate, withholder
from repro.workloads import oversale, star


class TestStar:
    @pytest.mark.parametrize("n", [1, 3, 6])
    def test_feasible_at_any_width(self, n):
        assert star(n).feasibility().feasible

    def test_simulates_to_completion(self):
        problem = star(4)
        result = simulate(problem)
        assert len(result.completed_agents) == 4
        assert evaluate_safety(problem, result).honest_parties_safe()

    def test_producer_bundle_protected_from_one_defector(self):
        # The producer wants all four sales (its conjunction is a bundle);
        # one buyer vanishing must not leave the producer partially sold.
        problem = star(3)
        result = simulate(problem, adversaries={"Consumer2": withholder(0)}, deadline=50.0)
        report = evaluate_safety(problem, result)
        assert report.honest_parties_safe(frozenset({"Consumer2"}))

    def test_petri_agrees(self):
        assert exchange_completable(star(3)).coverable

    def test_invalid_width_rejected(self):
        with pytest.raises(ModelError):
            star(0)


class TestOversale:
    """The documented possession-blindness of the sequencing test."""

    def test_sequencing_test_is_possession_blind(self):
        # The reduction happily certifies selling one document twice...
        assert oversale(2).feasibility().feasible

    def test_execution_scheduler_catches_it(self):
        # ...but no physically executable sequence exists, and the scheduler
        # says so instead of emitting one.
        with pytest.raises(InfeasibleExchangeError, match="stalled"):
            oversale(2).execution_sequence()

    def test_petri_token_game_catches_it(self):
        # The token encoding is resource-linear: one 'd' token, two buyers.
        assert not exchange_completable(oversale(2)).coverable

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_any_width(self, n):
        problem = oversale(n)
        assert problem.feasibility().feasible
        assert not exchange_completable(problem).coverable

    def test_minimum_width_enforced(self):
        with pytest.raises(ModelError):
            oversale(1)


class TestMultipartyPetri:
    def test_ring_coverable(self):
        from repro.core.interaction import InteractionGraph
        from repro.core.items import document
        from repro.core.parties import broker, trusted
        from repro.core.problem import ExchangeProblem

        graph = InteractionGraph()
        members = []
        for i in range(3):
            p = broker(f"P{i + 1}")
            graph.add_principal(p)
            members.append((p, document(f"d{i + 1}")))
        t = graph.add_trusted(trusted("T"))
        graph.add_multi_exchange(t, members)
        problem = ExchangeProblem("ring", graph).validate(allow_multiparty=True)
        result = exchange_completable(problem)
        assert result.coverable
        # The single completion hands every member its entitlement.
        assert "complete:T" in result.witness
