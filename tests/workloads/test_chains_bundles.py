"""Unit tests for the chain and bundle workload generators."""

import pytest

from repro.errors import ModelError
from repro.workloads import broker_bundle, consumer_bundle_prices, resale_chain


class TestResaleChain:
    def test_zero_brokers_is_simple_purchase_shape(self):
        p = resale_chain(0)
        assert len(p.interaction.edges) == 2
        assert len(p.interaction.trusted_components) == 1

    def test_party_counts_scale(self):
        for n in (1, 3, 7):
            p = resale_chain(n, retail=100.0)
            assert len(p.interaction.principals) == n + 2
            assert len(p.interaction.trusted_components) == n + 1
            assert len(p.interaction.edges) == 2 * (n + 1)

    def test_priority_count_matches_brokers(self):
        p = resale_chain(4, retail=100.0)
        assert len(p.interaction.priority_edges) == 4

    def test_poor_chain_doubles_priorities(self):
        p = resale_chain(3, retail=100.0, solvent=False)
        assert len(p.interaction.priority_edges) == 6

    def test_prices_decrease_upstream(self):
        p = resale_chain(2, retail=10.0, margin=1.0)
        ig = p.interaction
        assert ig.find_edge("Consumer", "Trusted1").provides.cents == 1000
        assert ig.find_edge("Broker1", "Trusted2").provides.cents == 900
        assert ig.find_edge("Broker2", "Trusted3").provides.cents == 800

    def test_negative_brokers_rejected(self):
        with pytest.raises(ModelError):
            resale_chain(-1)

    def test_margin_exhaustion_rejected(self):
        with pytest.raises(ModelError):
            resale_chain(10, retail=5.0, margin=1.0)

    def test_names(self):
        assert resale_chain(2).name == "resale-chain-2"
        assert resale_chain(2, retail=100.0, solvent=False).name == "resale-chain-2-poor"


class TestBrokerBundle:
    def test_shape_scales_with_k(self):
        for k in (1, 2, 4):
            prices = tuple(float(i + 1) for i in range(k))
            p = broker_bundle(k, prices)
            assert len(p.interaction.principals) == 2 * k + 1
            assert len(p.interaction.trusted_components) == 2 * k
            assert len(p.interaction.edges) == 4 * k
            assert len(p.interaction.priority_edges) == k

    def test_single_doc_bundle_is_feasible(self):
        # k=1 has no all-or-nothing tension: it is Example #1 in disguise.
        assert broker_bundle(1, (10.0,)).feasibility().feasible

    def test_multi_doc_bundles_infeasible(self):
        for k in (2, 3, 4):
            prices = tuple(float(10 * (i + 1)) for i in range(k))
            assert not broker_bundle(k, prices).feasibility().feasible, k

    def test_price_validation(self):
        with pytest.raises(ModelError):
            broker_bundle(2, (10.0,))
        with pytest.raises(ModelError):
            broker_bundle(2, (10.0, 20.0), wholesale_prices=(1.0,))
        with pytest.raises(ModelError):
            broker_bundle(0, ())

    def test_default_wholesale_is_80_percent(self):
        p = broker_bundle(1, (10.0,))
        assert p.interaction.find_edge("Broker1", "Trusted2").provides.cents == 800

    def test_consumer_bundle_prices_helper(self, fig7):
        prices = consumer_bundle_prices(fig7)
        assert prices == {"Trusted1": 1000, "Trusted3": 2000, "Trusted5": 3000}

    def test_custom_name(self):
        assert broker_bundle(2, (1.0, 2.0), name="xyz").name == "xyz"
        assert broker_bundle(2, (1.0, 2.0)).name == "broker-bundle-2"
