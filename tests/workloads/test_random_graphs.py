"""Unit tests for the random workload generator."""

import random

import pytest

from repro.errors import ModelError
from repro.workloads import RandomProblemConfig, random_problem, random_problem_batch


class TestConfig:
    def test_defaults_valid(self):
        RandomProblemConfig()

    def test_bad_configs_rejected(self):
        with pytest.raises(ModelError):
            RandomProblemConfig(n_principals=1)
        with pytest.raises(ModelError):
            RandomProblemConfig(n_exchanges=0)
        with pytest.raises(ModelError):
            RandomProblemConfig(priority_probability=1.5)
        with pytest.raises(ModelError):
            RandomProblemConfig(hub_probability=-0.1)
        with pytest.raises(ModelError):
            RandomProblemConfig(hub_probability=1.5)


class TestGeneration:
    def test_problems_validate(self):
        for seed in range(20):
            random_problem(seed=seed).validate()

    def test_reproducible_by_seed(self):
        a = random_problem(seed=42)
        b = random_problem(seed=42)
        assert [e.label for e in a.interaction.edges] == [
            e.label for e in b.interaction.edges
        ]
        assert a.interaction.priority_edges == b.interaction.priority_edges

    def test_different_seeds_differ(self):
        labels = {
            tuple(e.label for e in random_problem(seed=s).interaction.edges)
            for s in range(10)
        }
        # Structure (who exchanges with whom) should vary across seeds.
        priorities = {
            frozenset(e.label for e in random_problem(seed=s).interaction.priority_edges)
            for s in range(10)
        }
        assert len(labels) > 1 or len(priorities) > 1

    def test_exchange_count_respected(self):
        config = RandomProblemConfig(n_principals=5, n_exchanges=9, allow_cycles=True)
        p = random_problem(config, seed=1)
        assert len(p.interaction.edges) == 18
        assert len(p.interaction.trusted_components) == 9

    def test_zero_priority_probability_gives_no_reds(self):
        config = RandomProblemConfig(priority_probability=0.0)
        for seed in range(5):
            p = random_problem(config, seed=seed)
            assert p.interaction.priority_edges == frozenset()

    def test_feasibility_always_defined(self):
        # Any random problem must reduce without crashing, whatever verdict.
        for seed in range(30):
            random_problem(seed=seed).feasibility()

    def test_rng_parameter(self):
        p = random_problem(rng=random.Random(7))
        q = random_problem(rng=random.Random(7))
        assert [e.label for e in p.interaction.edges] == [
            e.label for e in q.interaction.edges
        ]


class TestHubTopologies:
    """The ``hub_probability`` stress knob (preferential attachment)."""

    def _max_degree(self, problem):
        degree: dict = {}
        for edge in problem.interaction.edges:
            degree[edge.principal] = degree.get(edge.principal, 0) + 1
        return max(degree.values())

    def test_hub_problems_validate_and_reduce(self):
        config = RandomProblemConfig(
            n_principals=12, n_exchanges=24, allow_cycles=True, hub_probability=0.9
        )
        for seed in range(5):
            problem = random_problem(config, seed=seed)
            problem.validate()
            problem.feasibility()

    def test_hub_probability_concentrates_degree(self):
        uniform = RandomProblemConfig(
            n_principals=30, n_exchanges=60, allow_cycles=True, hub_probability=0.0
        )
        hubby = RandomProblemConfig(
            n_principals=30, n_exchanges=60, allow_cycles=True, hub_probability=0.95
        )
        uniform_max = sum(
            self._max_degree(random_problem(uniform, seed=s)) for s in range(8)
        )
        hubby_max = sum(
            self._max_degree(random_problem(hubby, seed=s)) for s in range(8)
        )
        assert hubby_max > uniform_max

    def test_zero_hub_probability_preserves_seed_stream(self):
        # The knob must not consume rng draws when disabled: a config with
        # hub_probability=0.0 reproduces the problems historical seeds gave.
        plain = random_problem(RandomProblemConfig(), seed=13)
        knobbed = random_problem(RandomProblemConfig(hub_probability=0.0), seed=13)
        assert [e.label for e in plain.interaction.edges] == [
            e.label for e in knobbed.interaction.edges
        ]
        assert plain.interaction.priority_edges == knobbed.interaction.priority_edges

    def test_hub_reproducible_by_seed(self):
        config = RandomProblemConfig(
            n_principals=10, n_exchanges=20, allow_cycles=True, hub_probability=0.7
        )
        a = random_problem(config, seed=3)
        b = random_problem(config, seed=3)
        assert [e.label for e in a.interaction.edges] == [
            e.label for e in b.interaction.edges
        ]


class TestBatch:
    def test_batch_size(self):
        assert len(random_problem_batch(5)) == 5

    def test_batch_reproducible(self):
        a = random_problem_batch(3, seed=9)
        b = random_problem_batch(3, seed=9)
        for pa, pb in zip(a, b):
            assert [e.label for e in pa.interaction.edges] == [
                e.label for e in pb.interaction.edges
            ]

    def test_batch_members_differ(self):
        batch = random_problem_batch(6, seed=1)
        signatures = {
            tuple(e.label for e in p.interaction.edges) for p in batch
        }
        assert len(signatures) > 1
