"""The process-wide tracer scopes: install, restore, nest."""

from repro.obs import active, disable, enable, metrics_scope, tracing


class TestActiveTracer:
    def setup_method(self):
        disable()

    def teardown_method(self):
        disable()

    def test_default_is_none(self):
        assert active() is None

    def test_enable_disable(self):
        tracer = enable()
        assert active() is tracer
        disable()
        assert active() is None

    def test_tracing_scope_installs_and_restores(self):
        assert active() is None
        with tracing() as tracer:
            assert active() is tracer
            assert tracer.record_spans
        assert active() is None

    def test_nested_scopes_restore_previous(self):
        with tracing() as outer:
            with tracing() as inner:
                assert active() is inner
                assert inner is not outer
            assert active() is outer

    def test_restores_on_exception(self):
        try:
            with tracing():
                raise ValueError("boom")
        except ValueError:
            pass
        assert active() is None

    def test_metrics_scope_is_spanless(self):
        with metrics_scope() as tracer:
            assert active() is tracer
            assert not tracer.record_spans
            with tracer.span("x") as span_id:
                assert span_id == -1
        assert active() is None
