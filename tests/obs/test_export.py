"""Export: canonical JSONL, replay-stable digests, tree/flame rendering."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    metric_records,
    render_flame,
    render_tree,
    snapshot_records,
    span_digest,
    span_records,
    to_jsonl,
    write_jsonl,
)


def _traced() -> Tracer:
    tracer = Tracer()
    with tracer.span("outer", {"k": 1}):
        tracer.instant("fire.rule1", {"edge": 0})
        with tracer.span("inner"):
            pass
    tracer.metrics.inc("verdict.pass")
    return tracer


class TestRecords:
    def test_span_records_ordered_by_span_id(self):
        records = span_records(_traced())
        assert [r["span_id"] for r in records] == [1, 2, 3]
        assert [r["name"] for r in records] == ["outer", "fire.rule1", "inner"]
        assert all(r["type"] == "span" for r in records)

    def test_metric_records_follow_snapshot_order(self):
        records = metric_records(_traced())
        names = [r["metric"] for r in records]
        assert names == sorted(names)
        assert all(r["type"] == "metric" for r in records)

    def test_snapshot_records_detached_from_tracer(self):
        registry = MetricsRegistry()
        registry.inc("verdict.pass", 2)
        (record,) = snapshot_records(registry.snapshot())
        assert record == {
            "type": "metric",
            "metric": "verdict.pass",
            "kind": "counter",
            "values": [2],
        }


class TestJsonl:
    def test_canonical_form(self):
        text = to_jsonl(span_records(_traced()))
        lines = text.splitlines()
        assert text.endswith("\n")
        assert len(lines) == 3
        for line in lines:
            parsed = json.loads(line)
            assert line == json.dumps(parsed, sort_keys=True, separators=(",", ":"))

    def test_empty_records_is_empty_string(self):
        assert to_jsonl([]) == ""

    def test_write_jsonl_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = span_records(_traced())
        write_jsonl(path, records)
        read_back = [json.loads(line) for line in path.read_text().splitlines()]
        assert read_back == records

    def test_span_digest_replay_stable_and_sensitive(self):
        assert span_digest(_traced()) == span_digest(_traced())
        other = _traced()
        other.instant("extra")
        assert span_digest(other) != span_digest(_traced())


class TestRendering:
    def test_tree_indents_children_and_marks_instants(self):
        lines = render_tree(_traced()).splitlines()
        assert lines[0] == "outer [1..5] k=1"
        assert lines[1] == "  fire.rule1 @2 edge=0"
        assert lines[2] == "  inner [3..4]"

    def test_tree_truncates_events(self):
        tracer = Tracer()
        span_id = tracer.start_span("message")
        for n in range(5):
            tracer.add_event(span_id, "attempt", {"n": n})
        tracer.end_span(span_id)
        rendered = render_tree(tracer, max_events=2)
        assert "… 3 more events" in rendered
        assert rendered.count("· attempt") == 2

    def test_flame_sorts_by_cumulative_ticks(self):
        lines = render_flame(_traced()).splitlines()
        assert lines[0].split() == ["span", "ticks", "count"]
        assert lines[1].startswith("outer")  # 4 ticks beats inner's 1
        assert lines[-1].startswith("fire.rule1")  # instants carry 0 ticks

    def test_flame_empty(self):
        assert render_flame(Tracer()) == "(no spans)"
