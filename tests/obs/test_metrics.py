"""Metrics: deterministic snapshots, order-independent merges, digests."""

import pytest

from repro.obs import MetricsRegistry, merge_snapshots, snapshot_digest


def _one_of_each() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.gauge("g").record(7.5)
    histogram = registry.histogram("h", boundaries=(1, 2, 4))
    for value in (0, 1, 3, 100):
        histogram.observe(value)
    return registry


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 4)
        assert registry.to_dict()["hits"] == 5

    def test_gauge_keeps_high_watermark(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        for value in (3, 9, 2):
            gauge.record(value)
        assert registry.to_dict()["depth"] == 9

    def test_histogram_buckets_and_overflow(self):
        registry = _one_of_each()
        h = registry.to_dict()["h"]
        assert h["count"] == 4
        assert h["total"] == 104
        assert h["buckets"] == {"le_1": 2, "le_2": 0, "le_4": 1, "overflow": 1}

    def test_kind_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_histogram_boundary_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", boundaries=(1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", boundaries=(1, 2, 3))

    def test_unsorted_boundaries_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", boundaries=(2, 1))


class TestSnapshots:
    def test_sorted_by_name(self):
        snapshot = _one_of_each().snapshot()
        assert [name for name, _, _ in snapshot] == ["c", "g", "h"]

    def test_snapshot_roundtrips_through_absorb(self):
        snapshot = _one_of_each().snapshot()
        fresh = MetricsRegistry()
        fresh.absorb(snapshot)
        assert fresh.snapshot() == snapshot

    def test_merge_is_order_independent(self):
        parts = [_one_of_each().snapshot() for _ in range(3)]
        extra = MetricsRegistry()
        extra.inc("c", 10)
        parts.append(extra.snapshot())
        forward = merge_snapshots(parts)
        backward = merge_snapshots(list(reversed(parts)))
        assert forward == backward
        assert snapshot_digest(forward) == snapshot_digest(backward)

    def test_merge_sums_counters_and_histograms_maxes_gauges(self):
        merged = MetricsRegistry()
        merged.absorb(merge_snapshots([_one_of_each().snapshot()] * 2))
        stats = merged.to_dict()
        assert stats["c"] == 6
        assert stats["g"] == 7.5  # max, not sum
        assert stats["h"]["count"] == 8

    def test_digest_is_value_sensitive(self):
        a = _one_of_each()
        b = _one_of_each()
        assert a.digest() == b.digest()
        b.inc("c")
        assert a.digest() != b.digest()

    def test_empty_merge(self):
        assert merge_snapshots([]) == ()
