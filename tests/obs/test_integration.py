"""End-to-end observability: traced pipeline replays, engine parity, faults.

These tests exercise the instrumented production code paths (reduction,
flat core, simulator, batch map) rather than the obs primitives directly —
the determinism contract only matters if the wired-up stack honors it.
"""

import warnings

from repro.analysis.batch import instrumented_map
from repro.core.flatcore import check_feasibility_flat, compile_graph, reduce_graph_compiled
from repro.core.reduction import reduce_graph
from repro.obs import active, metrics_scope, snapshot_digest, span_digest, tracing
from repro.sim.faults import FaultPlan, LinkFault
from repro.sim.runtime import simulate
from repro.workloads import example1, resale_chain


def _traced_pipeline():
    problem = example1()
    with tracing() as tracer:
        trace = reduce_graph(problem.sequencing_graph())
        compiled = compile_graph(problem.sequencing_graph())
        check_feasibility_flat(compiled)
        if trace.feasible:
            simulate(problem)
    return tracer


def _count_firings(item: int) -> int:
    obs = active()
    assert obs is not None  # instrumented_map installs a scope per item
    obs.metrics.inc("test.items")
    obs.metrics.histogram("test.sizes").observe(item)
    return item * item


class TestReplayStability:
    def test_full_pipeline_span_digest_is_byte_identical(self):
        first, second = _traced_pipeline(), _traced_pipeline()
        assert span_digest(first) == span_digest(second)
        assert first.metrics.digest() == second.metrics.digest()

    def test_pipeline_records_the_expected_span_families(self):
        tracer = _traced_pipeline()
        names = {span.name for span in tracer.spans}
        assert {"reduce.indexed", "verdict.flat", "sim.run", "message"} <= names
        assert tracer.open_span_ids() == []


class TestEngineParity:
    def test_indexed_and_flat_fire_the_same_rules(self):
        graph = resale_chain(4).sequencing_graph()
        with metrics_scope() as indexed:
            reduce_graph(graph)
        with metrics_scope() as flat:
            reduce_graph_compiled(compile_graph(graph))
        keys = ("reduction.firings.rule1", "reduction.firings.rule2")
        indexed_stats, flat_stats = indexed.metrics.to_dict(), flat.metrics.to_dict()
        for key in keys:
            assert indexed_stats[key] == flat_stats[key]
        assert (
            indexed_stats["reduction.worklist_depth"]["count"]
            == flat_stats["reduction.worklist_depth"]["count"]
        )


class TestFaultedSimulation:
    def test_message_trace_records_drops_and_outcomes(self):
        plan = FaultPlan(seed=7, links=(LinkFault(drop=1.0),), heal_at=3.0)
        with tracing() as tracer:
            simulate(example1(), fault_plan=plan)
        lines = [span.name for span in tracer.spans]
        assert "message" in lines
        message_spans = [s for s in tracer.spans if s.name == "message"]
        fates = {s.attrs.get("fate") for s in message_spans}
        assert fates <= {"delivered", "abandoned", "unresolved"}
        # Every pre-heal send was dropped at least once, so some message
        # span must carry a drop event.
        event_names = {
            name for s in message_spans for _, name, _ in s.events
        }
        assert "drop" in event_names

    def test_faulted_replay_is_still_deterministic(self):
        plan = FaultPlan(seed=7, links=(LinkFault(drop=0.5, duplicate=0.25),))
        digests = []
        for _ in range(2):
            with tracing() as tracer:
                simulate(example1(), fault_plan=plan)
            digests.append(span_digest(tracer))
        assert digests[0] == digests[1]


class TestInstrumentedMap:
    def test_serial_and_pooled_snapshots_match(self):
        items = list(range(12))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            serial_results, serial_snapshot = instrumented_map(
                _count_firings, items, processes=1
            )
            pooled_results, pooled_snapshot = instrumented_map(
                _count_firings, items, processes=2
            )
        assert serial_results == pooled_results == [n * n for n in items]
        assert serial_snapshot == pooled_snapshot
        assert snapshot_digest(serial_snapshot) == snapshot_digest(pooled_snapshot)

    def test_merged_counters_sum_across_items(self):
        _, snapshot = instrumented_map(_count_firings, list(range(5)), processes=1)
        by_name = {name: values for name, _, values in snapshot}
        assert by_name["test.items"] == (5,)
