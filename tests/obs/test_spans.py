"""Tracer span mechanics: nesting, events, metrics-only mode, hot helpers."""

from repro.obs import Tracer


class TestSpanLifecycle:
    def test_context_form_closes_and_records(self):
        tracer = Tracer()
        with tracer.span("outer", {"k": 1}) as span_id:
            assert span_id in tracer.open_span_ids()
        assert tracer.open_span_ids() == []
        (span,) = tracer.spans
        assert span.name == "outer"
        assert span.attrs == {"k": 1}
        assert (span.start, span.end) == (1, 2)

    def test_nesting_parents_to_stack_top(self):
        tracer = Tracer()
        with tracer.span("outer") as outer_id:
            with tracer.span("inner") as inner_id:
                pass
        inner = next(s for s in tracer.spans if s.span_id == inner_id)
        outer = next(s for s in tracer.spans if s.span_id == outer_id)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == 0

    def test_exception_still_closes(self):
        tracer = Tracer()
        try:
            with tracer.span("risky"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert tracer.open_span_ids() == []
        assert tracer.spans[0].end is not None

    def test_imperative_open_close_with_attrs(self):
        tracer = Tracer()
        span_id = tracer.start_span("message", {"key": 1})
        tracer.add_event(span_id, "attempt", {"n": 1})
        tracer.set_attr(span_id, "fate", "delivered")
        tracer.end_span(span_id, {"at": 3})
        (span,) = tracer.spans
        assert span.attrs == {"key": 1, "fate": "delivered", "at": 3}
        assert [name for _, name, _ in span.events] == ["attempt"]

    def test_end_unknown_span_is_noop(self):
        tracer = Tracer()
        tracer.end_span(99)
        assert tracer.spans == []

    def test_instant_is_zero_length(self):
        tracer = Tracer()
        tracer.instant("fire.rule1", {"edge": 3})
        (span,) = tracer.spans
        assert span.start == span.end
        assert span.ticks == 0

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        with tracer.span("a") as a_id:
            pass
        with tracer.span("b"):
            child = tracer.start_span("c", parent=a_id)
            tracer.end_span(child)
        c = next(s for s in tracer.spans if s.name == "c")
        assert c.parent_id == a_id


class TestMetricsOnlyMode:
    def test_span_operations_are_noops(self):
        tracer = Tracer(record_spans=False)
        with tracer.span("x") as span_id:
            assert span_id == -1
        assert tracer.start_span("y") == -1
        tracer.end_span(-1)
        tracer.instant("z")
        assert tracer.spans == []
        assert tracer.clock.now == 0

    def test_metrics_still_accumulate(self):
        tracer = Tracer(record_spans=False)
        tracer.rule_firing("rule1", edge=0, depth=4, persona=True)
        tracer.verdict(True)
        stats = tracer.metrics.to_dict()
        assert stats["reduction.firings.rule1"] == 1
        assert stats["reduction.persona_waivers"] == 1
        assert stats["verdict.pass"] == 1
        assert stats["reduction.worklist_depth"]["count"] == 1


class TestHotPathHelpers:
    def test_rule_firing_emits_instant_with_attrs(self):
        tracer = Tracer()
        tracer.rule_firing("rule2", edge=7, depth=2)
        (span,) = tracer.spans
        assert span.name == "fire.rule2"
        assert span.attrs == {"edge": 7, "depth": 2}
        assert tracer.metrics.to_dict()["reduction.firings.rule2"] == 1

    def test_verdict_counters(self):
        tracer = Tracer()
        tracer.verdict(True)
        tracer.verdict(False)
        tracer.verdict(False)
        stats = tracer.metrics.to_dict()
        assert stats["verdict.pass"] == 1
        assert stats["verdict.fail"] == 2
