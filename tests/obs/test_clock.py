"""The two clocks: logical steps for traces, wall time for the boundary."""

import pytest

from repro.obs import LogicalClock, PhaseTimer, WallTimer


class TestLogicalClock:
    def test_starts_at_zero_first_tick_is_one(self):
        clock = LogicalClock()
        assert clock.now == 0
        assert clock.tick() == 1
        assert clock.now == 1

    def test_monotone(self):
        clock = LogicalClock()
        ticks = [clock.tick() for _ in range(5)]
        assert ticks == [1, 2, 3, 4, 5]


class TestWallTimer:
    def test_measures_nonnegative_seconds(self):
        with WallTimer() as timer:
            sum(range(1000))
        assert timer.seconds >= 0.0

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            WallTimer().stop()

    def test_reenter_restarts(self):
        timer = WallTimer()
        with timer:
            pass
        first = timer.seconds
        with timer:
            sum(range(10000))
        assert timer.seconds != first or timer.seconds >= 0.0


class TestPhaseTimer:
    def test_phases_in_entry_order(self):
        phases = PhaseTimer()
        with phases.phase("compile"):
            pass
        with phases.phase("run"):
            pass
        assert list(phases.as_dict()) == ["compile", "run"]

    def test_reentering_a_phase_accumulates(self):
        phases = PhaseTimer()
        for _ in range(3):
            with phases.phase("run"):
                sum(range(100))
        assert list(phases.as_dict()) == ["run"]
        assert phases.seconds["run"] > 0.0

    def test_round_to(self):
        phases = PhaseTimer()
        phases.add("run", 0.123456)
        assert phases.as_dict(round_to=2) == {"run": 0.12}
