"""Shared fixtures: the paper's worked examples and common parties/items."""

from __future__ import annotations

import pytest

from repro.core.items import document, money
from repro.core.parties import broker, consumer, producer, trusted
from repro.workloads import (
    example1,
    example2,
    example2_broker_trusts_source,
    example2_source_trusts_broker,
    figure7,
    poor_broker,
    simple_purchase,
)


@pytest.fixture
def ex1():
    """Figure 1: the feasible consumer-broker-producer chain."""
    return example1()


@pytest.fixture
def ex2():
    """Figure 2: the infeasible two-broker bundle."""
    return example2()


@pytest.fixture
def ex2_variant1():
    """§4.2.3: Source1 trusts Broker1 (feasible)."""
    return example2_source_trusts_broker()


@pytest.fixture
def ex2_variant2():
    """§4.2.3: Broker1 trusts Source1 (infeasible)."""
    return example2_broker_trusts_source()


@pytest.fixture
def fig7():
    """§6 / Figure 7: the three-broker indemnity example."""
    return figure7()


@pytest.fixture
def poor():
    """§5: the poor-broker variant (two red edges at ∧B)."""
    return poor_broker()


@pytest.fixture
def tiny():
    """§2.3: the minimal customer-producer purchase via one trusted agent."""
    return simple_purchase()


@pytest.fixture
def parties():
    """A bag of reusable parties."""
    return {
        "c": consumer("c"),
        "b": broker("b"),
        "p": producer("p"),
        "t": trusted("t"),
        "t2": trusted("t2"),
    }


@pytest.fixture
def doc():
    return document("d")


@pytest.fixture
def ten():
    return money(10)
