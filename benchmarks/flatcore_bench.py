"""Measure the compiled flat core and write ``BENCH_flatcore.json``.

Standalone (no pytest-benchmark) so CI's bench-smoke job and a developer's
shell run the exact same thing::

    PYTHONPATH=src python benchmarks/flatcore_bench.py \
        --sizes 64,256 --assert-parity --out BENCH_flatcore.json

Per size ``n`` it builds ``resale_chain(n)``, then times — median of
``--repeat`` runs each —

* the indexed engine's full ``reduce_graph`` (trace built);
* ``compile_graph`` (one-off cost, amortized over reuse);
* the flat free-order verdict loop (``check_feasibility_flat``, no trace);
* the flat parity engine + decompiler (``reduce_graph_compiled``, full
  trace).

It also measures batch throughput (problems/second) over ``--batch``
random problems, indexed one-at-a-time vs the packed flat arena.  All
timing lives here because wall-clock reads are banned from the linted core
(DET001); the payload is assembled by the DET002-linted builders in
:mod:`repro.core.flatcore.report`.

``--assert-parity`` makes the script exit non-zero unless the flat *trace*
path is at least at wall-clock parity with the indexed engine at every
measured size (the verdict loop is far faster still) — that is the CI
regression bar.  ``--assert-min-speedup X`` additionally requires the
verdict loop to beat the indexed engine by a factor of X at the largest
measured size.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from datetime import date

from repro.analysis.batch import batch_specs, effective_cpu_count
from repro.core.flatcore import (
    check_feasibility_flat,
    check_feasibility_flat_batch,
    compile_graph,
    reduce_graph_compiled,
)
from repro.core.flatcore.report import bench_payload
from repro.core.flatcore.runtime import decompile, run_reduction
from repro.core.reduction import reduce_graph
from repro.obs import PhaseTimer
from repro.workloads import RandomProblemConfig, resale_chain


def median_seconds(fn, repeat: int) -> float:
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def bench_sizes(sizes: list[int], repeat: int):
    graph_sizes: dict[int, int] = {}
    indexed: dict[int, float] = {}
    compile_s: dict[int, float] = {}
    verdict: dict[int, float] = {}
    trace: dict[int, float] = {}
    for n in sizes:
        problem = resale_chain(n, retail=float(max(1000, 2 * n)))
        sg = problem.sequencing_graph()
        graph_sizes[n] = len(sg.edges)
        compiled = compile_graph(sg)
        indexed[n] = median_seconds(lambda: reduce_graph(sg), repeat)
        compile_s[n] = median_seconds(lambda: compile_graph(sg), repeat)
        verdict[n] = median_seconds(lambda: check_feasibility_flat(compiled), repeat)
        trace[n] = median_seconds(lambda: reduce_graph_compiled(compiled), repeat)
        # Sanity: both engines certify the chain feasible.
        assert reduce_graph(sg).feasible
        assert check_feasibility_flat(compiled).feasible
        print(
            f"n={n:>6} E={graph_sizes[n]:>6} indexed={indexed[n] * 1e3:9.2f}ms "
            f"compile={compile_s[n] * 1e3:8.2f}ms "
            f"verdict={verdict[n] * 1e3:8.2f}ms trace={trace[n] * 1e3:9.2f}ms "
            f"verdict_x={indexed[n] / verdict[n]:6.1f} "
            f"trace_x={indexed[n] / trace[n]:5.1f}",
            file=sys.stderr,
        )
    return graph_sizes, indexed, compile_s, verdict, trace


def bench_phases(sizes: list[int], repeat: int) -> dict[int, dict[str, float]]:
    """Split the flat trace path into compile/run/decompile phases.

    Uses the sanctioned :class:`~repro.obs.clock.PhaseTimer` (the phases
    accumulate over *repeat* runs; reported values are mean seconds per run)
    so the artifact shows where a regression lands, not just that one did.
    """
    out: dict[int, dict[str, float]] = {}
    for n in sizes:
        problem = resale_chain(n, retail=float(max(1000, 2 * n)))
        sg = problem.sequencing_graph()
        phases = PhaseTimer()
        for _ in range(repeat):
            with phases.phase("compile"):
                compiled = compile_graph(sg)
            with phases.phase("run"):
                run = run_reduction(compiled)
            with phases.phase("decompile"):
                decompile(compiled, run)
        out[n] = {
            name: seconds / repeat for name, seconds in phases.as_dict().items()
        }
        parts = "  ".join(
            f"{name}={seconds * 1e3:8.2f}ms" for name, seconds in out[n].items()
        )
        print(f"n={n:>6} phases: {parts}", file=sys.stderr)
    return out


def bench_batch(problems: int, repeat: int) -> tuple[float, float]:
    specs = batch_specs(
        problems,
        RandomProblemConfig(
            n_principals=12, n_exchanges=9, priority_probability=0.5
        ),
        seed=0,
    )
    graphs = [spec.build().sequencing_graph() for spec in specs]

    def indexed_pass():
        for g in graphs:
            reduce_graph(g)

    def flat_pass():
        check_feasibility_flat_batch(graphs)

    indexed_s = median_seconds(indexed_pass, repeat)
    flat_s = median_seconds(flat_pass, repeat)
    return problems / indexed_s, problems / flat_s


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="64,256,1024",
        help="comma-separated broker counts for resale_chain (default 64,256,1024)",
    )
    parser.add_argument("--repeat", type=int, default=5, help="runs per median")
    parser.add_argument("--batch", type=int, default=200, help="batch problem count")
    parser.add_argument("--out", metavar="PATH", help="write the JSON payload here")
    parser.add_argument(
        "--assert-parity",
        action="store_true",
        help="fail unless the flat trace path is at least as fast as the "
        "indexed engine at every size",
    )
    parser.add_argument(
        "--assert-min-speedup",
        type=float,
        metavar="X",
        help="fail unless the verdict loop beats the indexed engine X-fold "
        "at the largest size",
    )
    args = parser.parse_args(argv)
    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]

    graph_sizes, indexed, compile_s, verdict, trace = bench_sizes(sizes, args.repeat)
    phase_seconds = bench_phases(sizes, args.repeat)
    indexed_pps, flat_pps = bench_batch(args.batch, max(1, args.repeat // 2))
    print(
        f"batch of {args.batch}: indexed {indexed_pps:,.0f} problems/s, "
        f"flat arena {flat_pps:,.0f} problems/s",
        file=sys.stderr,
    )

    payload = bench_payload(
        machine=f"{effective_cpu_count()}-core {platform.system().lower()}, "
        f"CPython {platform.python_version()}",
        date=date.today().isoformat(),
        process_cpus=effective_cpu_count(),
        graph_sizes=graph_sizes,
        indexed_reduce_seconds=indexed,
        compile_seconds=compile_s,
        flat_verdict_seconds=verdict,
        flat_trace_seconds=trace,
        phase_seconds=phase_seconds,
        batch_problems=args.batch,
        batch_indexed_problems_per_second=round(indexed_pps, 1),
        batch_flat_problems_per_second=round(flat_pps, 1),
        notes={
            "workload": "resale_chain(n, retail=max(1000, 2n)); batch uses "
            "200 random 12-principal problems",
            "verdict_vs_trace": "the verdict loop skips trace construction "
            "entirely; the trace path runs the parity engine + decompiler "
            "and still beats the indexed engine",
        },
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        json.dump(payload, sys.stdout, indent=2)
        print()

    failures = []
    if args.assert_parity:
        for n in sizes:
            if trace[n] > indexed[n]:
                failures.append(
                    f"flat trace path slower than indexed at n={n}: "
                    f"{trace[n]:.4f}s > {indexed[n]:.4f}s"
                )
        if flat_pps < indexed_pps:
            failures.append(
                f"flat arena throughput below indexed: {flat_pps:.0f} < "
                f"{indexed_pps:.0f} problems/s"
            )
    if args.assert_min_speedup:
        top = max(sizes)
        ratio = indexed[top] / verdict[top]
        if ratio < args.assert_min_speedup:
            failures.append(
                f"verdict speedup {ratio:.1f}x at n={top} is below the "
                f"required {args.assert_min_speedup}x"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
