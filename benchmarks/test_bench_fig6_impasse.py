"""FIG6 — Figure 6: Example #2 reaches an impasse — not shown feasible.

Paper: after the four removable edges go, "the only two fringe nodes,
Broker1–Trusted2 and Broker2–Trusted4, are connected to their respective
conjunction nodes by black edges that are subjugated to the red edges of
those nodes... we have reached an impasse."
"""

from repro.core.reduction import reduce_graph
from repro.workloads import example2

PROBLEM = example2()


def test_bench_figure6_impasse(benchmark):
    sg = PROBLEM.sequencing_graph()
    trace = benchmark(reduce_graph, sg)

    assert not trace.feasible
    assert len(trace.steps) == 4
    assert len(trace.remaining) == 10

    # The diagnosis matches the paper's narration exactly: each broker's
    # purchase edge is fringe but pre-empted by that broker's red sale edge.
    assert len(trace.blockages) == 2
    blocked = {b.edge.commitment.label for b in trace.blockages}
    assert blocked == {"Trusted2->Broker1", "Trusted4->Broker2"}
    for blockage in trace.blockages:
        (red,) = blockage.blocking_red
        assert red.is_red
        assert red.conjunction == blockage.edge.conjunction


def test_bench_figure6_verdict_is_not_shown_feasible(benchmark):
    from repro.core.feasibility import Verdict

    verdict = benchmark(PROBLEM.feasibility)
    # The paper is explicit that failure of the test proves nothing stronger.
    assert verdict.verdict is Verdict.NOT_SHOWN_FEASIBLE
    assert "not shown feasible" in verdict.explain()
