"""FIG4 — Figure 4: the sequencing graph of Example #2.

Paper: 8 commitment nodes, 7 conjunctions (∧C, ∧B1, ∧B2, ∧T1–∧T4), 14 edges
with red edges at ∧B1 and ∧B2; the paper's first four eliminations (the
circled numbers) remove the source deposits and the conjunction edges of
∧T2/∧T4.
"""

from conftest import figure4_initial_script

from repro.core.reduction import replay
from repro.core.sequencing import SequencingGraph
from repro.workloads import example2

PROBLEM = example2()


def test_bench_figure4_construction(benchmark):
    sg = benchmark(
        SequencingGraph.from_interaction, PROBLEM.interaction, PROBLEM.trust
    )
    assert len(sg.commitments) == 8
    assert len(sg.conjunctions) == 7
    assert len(sg.edges) == 14
    assert len(sg.red_edges) == 2
    assert {e.conjunction.agent.name for e in sg.red_edges} == {"Broker1", "Broker2"}
    # The consumer conjunction is all-black (the second-type bundle).
    consumer_conj = next(j for j in sg.conjunctions if j.agent.name == "Consumer")
    assert all(not e.is_red for e in sg.edges_of_conjunction(consumer_conj))


def test_bench_figure4_circled_eliminations(benchmark):
    """The paper's four legal eliminations leave ten edges and an impasse."""
    sg = PROBLEM.sequencing_graph()
    script = figure4_initial_script(sg)

    trace = benchmark(replay, sg, script)
    assert len(trace.steps) == 4
    assert len(trace.remaining) == 10
    assert not trace.feasible
    # The two source-side trusted conjunctions are fully disconnected.
    assert {j.agent.name for j in trace.conjunction_order} == {
        "Trusted2",
        "Trusted4",
    }
