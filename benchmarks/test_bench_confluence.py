"""CONFL — §4.2.4's confluence claim, exercised at benchmark scale.

"Although different graphs may result due to different reduction orders,
the feasibility test will always yield the same result."  The bench runs
many randomized reduction orders over the paper's examples and a batch of
random topologies, asserting one verdict per graph.
"""

import random

from repro.core.reduction import ReductionEngine, reduce_graph
from repro.workloads import (
    RandomProblemConfig,
    example1,
    example2,
    poor_broker,
    random_problem,
)


def _random_order_verdicts(graph, n_orders: int) -> set[bool]:
    verdicts = set()
    for seed in range(n_orders):
        rng = random.Random(seed)
        engine = ReductionEngine(graph)
        trace = engine.run(chooser=lambda options: rng.choice(options))
        verdicts.add(trace.feasible)
    return verdicts


def test_bench_confluence_on_paper_examples(benchmark):
    graphs = {
        "example1": (example1().sequencing_graph(), True),
        "example2": (example2().sequencing_graph(), False),
        "poor-broker": (poor_broker().sequencing_graph(), False),
    }

    def run():
        return {
            name: _random_order_verdicts(graph, 25)
            for name, (graph, _) in graphs.items()
        }

    results = benchmark(run)
    for name, (graph, expected) in graphs.items():
        assert results[name] == {expected}, name


def test_bench_confluence_on_random_topologies(benchmark):
    config = RandomProblemConfig(
        n_principals=9, n_exchanges=7, priority_probability=0.6, allow_cycles=True
    )
    problems = [random_problem(config, seed=s) for s in range(12)]

    def run():
        disagreements = 0
        for problem in problems:
            graph = problem.sequencing_graph()
            baseline = reduce_graph(graph).feasible
            if _random_order_verdicts(graph, 8) != {baseline}:
                disagreements += 1
        return disagreements

    assert benchmark(run) == 0
