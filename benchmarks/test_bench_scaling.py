"""SCALE — reduction cost versus graph size (this reproduction's own bench).

The paper gives no complexity analysis; empirically the greedy reduction is
near-linear in the number of sequencing edges on chains and bundles.  These
benches time the full pipeline (construction + reduction) at increasing
sizes so regressions are visible, and assert the verdicts stay correct.
"""

import pytest

from repro.core.reduction import reduce_graph
from repro.workloads import broker_bundle, resale_chain


@pytest.mark.parametrize("n_brokers", [1, 4, 16, 64])
def test_bench_chain_reduction_scaling(benchmark, n_brokers):
    problem = resale_chain(n_brokers, retail=1000.0)
    sg = problem.sequencing_graph()

    trace = benchmark(reduce_graph, sg)
    assert trace.feasible
    assert len(trace.steps) == len(sg.edges)


@pytest.mark.parametrize("k", [2, 8, 32])
def test_bench_bundle_reduction_scaling(benchmark, k):
    prices = tuple(float(i + 1) for i in range(k))
    problem = broker_bundle(k, prices)
    sg = problem.sequencing_graph()

    trace = benchmark(reduce_graph, sg)
    assert not trace.feasible
    assert len(trace.blockages) == k


@pytest.mark.parametrize("n_brokers", [4, 16, 64])
def test_bench_execution_recovery_scaling(benchmark, n_brokers):
    from repro.core.execution import recover_execution

    problem = resale_chain(n_brokers, retail=1000.0)
    trace = reduce_graph(problem.sequencing_graph())

    sequence = benchmark(recover_execution, trace)
    assert len(sequence) == 5 * (n_brokers + 1)
    assert sequence.violated_constraints() == []


@pytest.mark.parametrize("k", [3, 6, 9])
def test_bench_indemnity_planning_scaling(benchmark, k):
    from repro.core.indemnity import minimal_indemnity_plan

    prices = tuple(float(10 * (i + 1)) for i in range(k))
    problem = broker_bundle(k, prices)

    plan = benchmark(minimal_indemnity_plan, problem)
    assert plan.feasible
    assert len(plan.offers) == k - 1
