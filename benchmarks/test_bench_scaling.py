"""SCALE — reduction cost versus graph size (this reproduction's own bench).

The paper gives no complexity analysis; the indexed engine makes a full
reduction O(E · max-degree) (adjacency indices + a dirty-candidate
worklist), so chains of 256 and 1024 brokers and 128-item bundles are now
cheap enough to bench directly — the seed's naive engine was O(E³) and took
minutes at 256 brokers.  These benches time the reduction at increasing
sizes so regressions are visible, assert the verdicts stay correct, and time
the batched feasibility pipeline serial vs. pooled (the speedup is
*measured*, not asserted — on a single-core runner the pool only adds
overhead).
"""

import pytest

from repro.analysis import batch_specs, check_feasibility_batch
from repro.core.reduction import reduce_graph
from repro.workloads import RandomProblemConfig, broker_bundle, resale_chain


@pytest.mark.parametrize("n_brokers", [1, 4, 16, 64, 256, 1024])
def test_bench_chain_reduction_scaling(benchmark, n_brokers):
    problem = resale_chain(n_brokers, retail=float(max(1000, 2 * n_brokers)))
    sg = problem.sequencing_graph()

    trace = benchmark(reduce_graph, sg)
    assert trace.feasible
    assert len(trace.steps) == len(sg.edges)


@pytest.mark.parametrize("k", [2, 8, 32, 128])
def test_bench_bundle_reduction_scaling(benchmark, k):
    prices = tuple(float(i + 1) for i in range(k))
    problem = broker_bundle(k, prices)
    sg = problem.sequencing_graph()

    trace = benchmark(reduce_graph, sg)
    assert not trace.feasible
    assert len(trace.blockages) == k


@pytest.mark.parametrize("n_brokers", [4, 16, 64])
def test_bench_execution_recovery_scaling(benchmark, n_brokers):
    from repro.core.execution import recover_execution

    problem = resale_chain(n_brokers, retail=1000.0)
    trace = reduce_graph(problem.sequencing_graph())

    sequence = benchmark(recover_execution, trace)
    assert len(sequence) == 5 * (n_brokers + 1)
    assert sequence.violated_constraints() == []


@pytest.mark.parametrize("k", [3, 6, 9])
def test_bench_indemnity_planning_scaling(benchmark, k):
    from repro.core.indemnity import minimal_indemnity_plan

    prices = tuple(float(10 * (i + 1)) for i in range(k))
    problem = broker_bundle(k, prices)

    plan = benchmark(minimal_indemnity_plan, problem)
    assert plan.feasible
    assert len(plan.offers) == k - 1


# One batch of random problems, heavy enough per item that process-pool
# dispatch is worth timing against the serial loop.
_STUDY_CONFIG = RandomProblemConfig(
    n_principals=40, n_exchanges=36, priority_probability=0.6
)
_STUDY_SPECS = batch_specs(100, _STUDY_CONFIG, seed=7)
_STUDY_EXPECTED = check_feasibility_batch(_STUDY_SPECS, processes=1)


@pytest.mark.parametrize("processes", [1, 2])
def test_bench_batched_feasibility_study(benchmark, processes):
    verdicts = benchmark(
        check_feasibility_batch, _STUDY_SPECS, processes=processes
    )
    # Correctness is asserted either way; relative timing between the two
    # parametrizations is the measurement.
    assert verdicts == _STUDY_EXPECTED
