"""PETRI — §7.4: the Petri-net view of exchange feasibility.

The paper relates sequencing graphs to Petri nets and leaves the encoding as
future work; our translation's coverability verdict agrees with the
sequencing-graph feasibility test on every worked example, with and without
indemnity plans and direct trust.
"""

from repro.core.indemnity import minimal_indemnity_plan, plan_indemnities
from repro.petri import exchange_completable, translate
from repro.workloads import (
    example1,
    example2,
    example2_broker_trusts_source,
    example2_source_trusts_broker,
    figure7,
    poor_broker,
    resale_chain,
    simple_purchase,
)

CASES = [
    ("simple-purchase", simple_purchase, True),
    ("example1", example1, True),
    ("example2", example2, False),
    ("poor-broker", poor_broker, False),
    ("figure7", figure7, False),
    ("variant1", example2_source_trusts_broker, True),
    ("variant2", example2_broker_trusts_source, False),
    ("chain-4", lambda: resale_chain(4, retail=100.0), True),
]


def test_bench_petri_agreement_matrix(benchmark):
    def run():
        return {
            name: exchange_completable(factory()).coverable
            for name, factory, _ in CASES
        }

    verdicts = benchmark(run)
    for name, factory, expected in CASES:
        assert verdicts[name] == expected, name
        assert factory().feasibility().feasible == expected, name


def test_bench_petri_indemnity_unlock(benchmark):
    problem = example2()
    plan = plan_indemnities(
        problem, [problem.interaction.find_edge("Consumer", "Trusted1")]
    )

    def run():
        return (
            exchange_completable(problem).coverable,
            exchange_completable(problem, plan).coverable,
        )

    before, after = benchmark(run)
    assert (before, after) == (False, True)


def test_bench_petri_figure7_greedy_unlock(benchmark):
    problem = figure7()
    plan = minimal_indemnity_plan(problem)
    result = benchmark(exchange_completable, problem, plan)
    assert result.coverable


def test_bench_petri_witness_is_executable(benchmark):
    from repro.petri import fire_sequence

    problem = resale_chain(3, retail=100.0)

    def run():
        net, target = translate(problem)
        result = exchange_completable(problem)
        return net, target, result

    net, target, result = benchmark(run)
    assert result.coverable
    assert fire_sequence(net, list(result.witness)).covers(target)


def test_bench_petri_incompleteness_gap(benchmark):
    """The reduction test is sound but conservative: on random topologies the
    notify-guarded Petri semantics certifies a strict superset of exchanges
    (the paper's own §4.2.4 caveat, quantified)."""
    from repro.analysis.feasibility_study import incompleteness_gap

    row = benchmark(incompleteness_gap, 60)
    assert row.unsound == 0  # reduction-feasible always coverable
    assert row.gap >= 0  # and typically a few percent of instances
