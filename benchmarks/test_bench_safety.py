"""SAFE — the paper's protection claim, checked mechanically (§1, §2.3, §5).

"A feasible exchange can be carried out in such a way that no participant
ever risks losing money or goods without receiving everything promised in
exchange."  We simulate the synthesized protocol against every single-party
defection strategy and assert every honest party ends acceptably — then run
the same defections under the naive direct protocol and 2PC, which both
harm someone.
"""

from repro.baselines.direct import direct_exchange
from repro.baselines.two_phase_commit import ParticipantBehavior, two_phase_commit
from repro.core.indemnity import plan_indemnities
from repro.sim import Simulation, evaluate_safety, simulate, withholder, wrong_item_sender
from repro.workloads import example1, example2, resale_chain

DEADLINE = 60.0


def _all_single_defections(problem):
    reports = []
    for principal in problem.interaction.principals:
        result = simulate(
            problem, adversaries={principal.name: withholder(0)}, deadline=DEADLINE
        )
        report = evaluate_safety(problem, result)
        reports.append((principal.name, report))
    return reports


def test_bench_example1_single_defector_matrix(benchmark):
    problem = example1()
    reports = benchmark(_all_single_defections, problem)
    assert len(reports) == 3
    for cheat, report in reports:
        assert report.honest_parties_safe(frozenset({cheat})), report.describe()


def test_bench_chain_defector_matrix(benchmark):
    problem = resale_chain(3, retail=100.0)
    reports = benchmark(_all_single_defections, problem)
    for cheat, report in reports:
        assert report.honest_parties_safe(frozenset({cheat})), report.describe()


def test_bench_bogus_goods_rejected(benchmark):
    problem = example1()
    result = benchmark(
        simulate,
        problem,
        adversaries={"Producer": wrong_item_sender("d")},
        deadline=DEADLINE,
    )
    report = evaluate_safety(problem, result)
    assert report.honest_parties_safe(frozenset({"Producer"}))
    assert result.completed_agents == frozenset()  # no exchange completed


def test_bench_indemnity_forfeit_protects_consumer(benchmark):
    """§6 under attack: Broker1 escrows then reneges; forfeit makes the
    consumer whole while the cheat pays."""
    problem = example2()
    cover = problem.interaction.find_edge("Consumer", "Trusted1")
    plan = plan_indemnities(problem, [cover])

    def run():
        sim = Simulation.from_plan(
            problem, plan, adversaries={"Broker1": withholder(1)}, deadline=DEADLINE
        )
        return sim.run()

    result = benchmark(run)
    report = evaluate_safety(problem, result)
    assert report.honest_parties_safe(frozenset({"Broker1"}))
    assert report.verdict_of("Consumer").forfeits_received_cents == 2200
    broker1 = next(p for p in problem.interaction.parties if p.name == "Broker1")
    assert result.money_delta(broker1) == -2200


def test_bench_baselines_fail_where_protocol_protects(benchmark):
    """Same defection, three protocols: only the synthesized one is safe."""
    problem = example1()

    def run_all():
        protocol_result = simulate(
            problem, adversaries={"Broker": withholder(0)}, deadline=DEADLINE
        )
        protocol_report = evaluate_safety(problem, protocol_result)
        naive = direct_exchange(seller_honest=False, buyer_pays_first=True)
        tpc = two_phase_commit(
            problem, {"Broker": ParticipantBehavior(performs=False)}
        )
        return protocol_report, naive, tpc

    protocol_report, naive, tpc = benchmark(run_all)
    assert protocol_report.honest_parties_safe(frozenset({"Broker"}))
    assert not naive.buyer_ok  # naive: the paying customer is robbed
    assert not tpc.all_safe  # 2PC: performers harmed by the committed cheat
    assert {p.name for p in tpc.harmed} == {"Consumer", "Producer"}
