"""EXT — the §9 future-work extensions, implemented and measured.

* **Distributed reduction** — each participant locally decides its part;
  verdicts match the centralized engine with O(edges) messages and
  O(diameter) rounds.
* **Hierarchy of trust** — trust among intermediaries unlocks principal
  pairs that share no direct intermediary.
* **Multi-party trusted agents** — a 3-party ring exchange through one
  component is feasible, executes, and simulates safely.

Plus the ablations DESIGN.md calls out: Rule #1 clause 2 is exactly what
makes §4.2.3 variant 1 feasible, and possession gating is exactly what makes
multi-reseller chains executable.
"""

from repro.core.execution import recover_execution
from repro.core.mediation import hierarchy_study
from repro.core.reduction import ReductionEngine, reduce_graph
from repro.distributed import distributed_reduce
from repro.workloads import (
    example1,
    example2,
    example2_source_trusts_broker,
    figure7,
    resale_chain,
)


def test_bench_distributed_matches_centralized(benchmark):
    problems = [example1(), example2(), figure7(), resale_chain(5, retail=100.0)]
    graphs = [(p, p.sequencing_graph()) for p in problems]

    def run():
        return [
            (distributed_reduce(g).feasible, reduce_graph(g).feasible)
            for _, g in graphs
        ]

    results = benchmark(run)
    for distributed, centralized in results:
        assert distributed == centralized


def test_bench_distributed_message_and_round_costs(benchmark):
    graph = resale_chain(8, retail=100.0).sequencing_graph()
    trace = benchmark(distributed_reduce, graph)
    assert trace.feasible
    # One notification per cross-conjunction edge removal, at most.
    assert trace.messages <= len(graph.edges)
    # Rounds track the commitment cascade along the chain.
    assert trace.rounds >= 8


def test_bench_hierarchy_unlocks_pairs(benchmark):
    rows = benchmark(lambda: [hierarchy_study(seed=s) for s in range(6)])
    assert all(r.pairs_hierarchical >= r.pairs_direct for r in rows)
    assert sum(r.unlocked_by_hierarchy for r in rows) > 0


def test_bench_multiparty_ring(benchmark):
    from repro.core.interaction import InteractionGraph
    from repro.core.items import document
    from repro.core.parties import broker, trusted
    from repro.core.problem import ExchangeProblem
    from repro.sim import evaluate_safety, simulate

    def run():
        graph = InteractionGraph()
        members = []
        for i in range(3):
            p = broker(f"P{i + 1}")
            graph.add_principal(p)
            members.append((p, document(f"d{i + 1}")))
        graph.add_trusted(trusted("T"))
        graph.add_multi_exchange(graph.trusted_components[0], members)
        problem = ExchangeProblem("ring", graph).validate(allow_multiparty=True)
        result = simulate(problem)
        return problem, result

    problem, result = benchmark(run)
    assert len(result.completed_agents) == 1
    assert evaluate_safety(problem, result).honest_parties_safe()


def test_bench_ablation_persona_clause(benchmark):
    graph = example2_source_trusts_broker().sequencing_graph()

    def run():
        with_clause = ReductionEngine(graph, enable_persona_clause=True).run()
        without = ReductionEngine(graph, enable_persona_clause=False).run()
        return with_clause.feasible, without.feasible

    enabled, disabled = benchmark(run)
    assert (enabled, disabled) == (True, False)


def test_bench_ablation_possession_gate(benchmark):
    trace = reduce_graph(resale_chain(3, retail=100.0).sequencing_graph())

    def run():
        gated = recover_execution(trace, scheduler="possession")
        strict = recover_execution(trace, scheduler="paper-strict")
        return len(gated.violated_constraints()), len(strict.violated_constraints())

    gated_violations, strict_violations = benchmark(run)
    assert gated_violations == 0
    assert strict_violations > 0
