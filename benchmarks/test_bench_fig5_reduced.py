"""FIG5 — Figure 5: Example #1 fully reduces — the exchange is feasible.

Paper: "With all of the nodes disconnected (Figure 5), we see that this is a
feasible transaction."  Any greedy order must reach the same verdict
(§4.2.4), so this bench reduces with the engine's automatic strategy.
"""

from repro.core.reduction import reduce_graph
from repro.workloads import example1

PROBLEM = example1()


def test_bench_figure5_full_reduction(benchmark):
    sg = PROBLEM.sequencing_graph()
    trace = benchmark(reduce_graph, sg)

    assert trace.feasible
    assert trace.remaining == frozenset()
    assert len(trace.steps) == 6  # every edge eliminated
    assert len(trace.commitment_order) == 4  # all commitments disconnected
    assert len(trace.conjunction_order) == 3
    assert trace.blockages == ()


def test_bench_figure5_feasibility_verdict(benchmark):
    verdict = benchmark(PROBLEM.feasibility)
    assert verdict.feasible
    assert verdict.explain().startswith("feasible")
