"""FIG1 — Figure 1: the interaction graph of Example #1.

Paper: a consumer, a broker, and a producer joined in a chain by two trusted
intermediaries (c–t1–b–t2–p); the graph is bipartite between principals and
trusted components.
"""

from repro.workloads import example1


def test_bench_figure1_interaction_graph(benchmark):
    problem = benchmark(example1)
    graph = problem.interaction
    graph.validate()

    assert {p.name for p in graph.principals} == {"Consumer", "Broker", "Producer"}
    assert {t.name for t in graph.trusted_components} == {"Trusted1", "Trusted2"}
    assert len(graph.edges) == 4

    # Chain degrees: leaves 1, everything internal 2 (Figure 1's shape).
    degrees = {p.name: graph.degree(p) for p in graph.parties}
    assert degrees == {
        "Consumer": 1,
        "Broker": 2,
        "Producer": 1,
        "Trusted1": 2,
        "Trusted2": 2,
    }

    # Bipartite: every edge joins a principal to a trusted component.
    for edge in graph.edges:
        assert edge.principal.is_principal and edge.trusted.is_trusted

    # Exactly one priority marking: the broker's sale side (red at ∧B).
    (priority,) = graph.priority_edges
    assert (priority.principal.name, priority.trusted.name) == ("Broker", "Trusted1")
