"""FIG3 — Figure 3: the sequencing graph of Example #1 and its elimination
order.

Paper: 4 commitment nodes (hexagons), 3 conjunction nodes (∧B, ∧T1, ∧T2),
6 edges of which exactly one is red (Trusted1–Broker at ∧B); the circled
numbers 1–6 give a legal elimination order ending with an empty graph.
"""

from conftest import paper_reduction_script

from repro.core.reduction import replay
from repro.core.sequencing import SequencingGraph
from repro.workloads import example1

PROBLEM = example1()


def test_bench_figure3_construction(benchmark):
    sg = benchmark(
        SequencingGraph.from_interaction, PROBLEM.interaction, PROBLEM.trust
    )
    assert len(sg.commitments) == 4
    assert len(sg.conjunctions) == 3
    assert len(sg.edges) == 6
    assert len(sg.red_edges) == 1
    (red,) = sg.red_edges
    assert red.commitment.label == "Trusted1->Broker"
    assert red.conjunction.agent.name == "Broker"
    assert {j.agent.name for j in sg.conjunctions} == {
        "Broker",
        "Trusted1",
        "Trusted2",
    }


def test_bench_figure3_circled_elimination_order(benchmark):
    """Replaying the paper's circled order 1–6 is legal and empties the graph."""
    sg = PROBLEM.sequencing_graph()
    script = paper_reduction_script(sg)

    trace = benchmark(replay, sg, script)
    assert trace.feasible
    assert len(trace.steps) == 6
    # Steps 1,3,5,6 are Rule #1; steps 2,4 are Rule #2 — as in §4.2.2.
    rules = [int(step.rule) for step in trace.steps]
    assert rules == [1, 2, 1, 2, 1, 1]
    # The red edge is removed fifth, by Rule #1, exactly as narrated.
    assert trace.steps[4].edge.is_red
