"""TRUST — §4.2.3: direct trust between principals, and its asymmetry.

Paper: on Example #2, "in the first variant [Source1 trusts Broker1], the
exchange becomes feasible; but in the second [Broker1 trusts Source1], it
remains unfeasible.  This difference underscores the fact that trust need
not be symmetric... and the asymmetry can directly affect the ultimate
feasibility of transactions."
"""

from repro.core.reduction import reduce_graph
from repro.workloads import (
    example2,
    example2_broker_trusts_source,
    example2_source_trusts_broker,
)


def test_bench_variant1_source_trusts_broker_feasible(benchmark):
    problem = example2_source_trusts_broker()
    trace = benchmark(lambda: reduce_graph(problem.sequencing_graph()))
    assert trace.feasible
    # The unlock is the persona removal: some step fired via clause 2.
    assert any(step.via_persona for step in trace.steps)


def test_bench_variant1_domino_effect(benchmark):
    """After the persona removal, everything cascades: 14 steps total."""
    problem = example2_source_trusts_broker()
    trace = benchmark(lambda: reduce_graph(problem.sequencing_graph()))
    assert len(trace.steps) == 14  # every edge of Figure 4 eliminated


def test_bench_variant2_broker_trusts_source_still_infeasible(benchmark):
    problem = example2_broker_trusts_source()
    trace = benchmark(lambda: reduce_graph(problem.sequencing_graph()))
    assert not trace.feasible
    # Source1's persona unlocks nothing new: same 10-edge impasse as Fig 6.
    assert len(trace.remaining) == 10


def test_bench_trust_asymmetry_matrix(benchmark):
    """Verdicts for (no trust, s1→b1, b1→s1, mutual) in one sweep."""

    def verdicts():
        base = example2()
        return (
            base.feasibility().feasible,
            example2_source_trusts_broker().feasibility().feasible,
            example2_broker_trusts_source().feasibility().feasible,
            base.with_trust("Source1", "Broker1")
            .with_trust("Broker1", "Source1")
            .feasibility()
            .feasible,
        )

    none_, forward, backward, mutual = benchmark(verdicts)
    assert (none_, forward, backward, mutual) == (False, True, False, True)
