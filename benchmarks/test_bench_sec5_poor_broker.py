"""POOR — §5's closing variant: the poor broker.

Paper: if the broker "was counting on the customer's funds to buy the
document... the black arc between ∧B and the Broker–Trusted2 node [changes]
to a red arc.  This means that there are two red edges emerging from ∧B,
each of which must be done first.  Since this is impossible, the whole
exchange is infeasible."
"""

from repro.core.reduction import reduce_graph
from repro.workloads import example1, poor_broker

PROBLEM = poor_broker()


def test_bench_poor_broker_infeasible(benchmark):
    sg = PROBLEM.sequencing_graph()
    trace = benchmark(reduce_graph, sg)

    assert not trace.feasible
    # Exactly the two red edges at ∧B survive along with their siblings;
    # neither can be removed because each pre-empts the other.
    reds_remaining = [e for e in trace.remaining if e.is_red]
    assert len(reds_remaining) == 2
    assert {e.conjunction.agent.name for e in reds_remaining} == {"Broker"}

    blocked = {b.edge.commitment.label for b in trace.blockages}
    assert blocked == {"Trusted1->Broker", "Trusted2->Broker"}


def test_bench_solvency_is_the_only_difference(benchmark):
    """The same graph with one red edge fewer is Example #1 — feasible."""
    solvent = example1()
    verdict = benchmark(solvent.feasibility)
    assert verdict.feasible
    assert not PROBLEM.feasibility().feasible
