"""CHAOS — the protection claim under transport and process faults.

The paper proves the no-honest-loss guarantee on a perfect wire; the
fault-injection layer re-checks it on a hostile one.  These benchmarks time
the chaos sweep (random problems × seeded fault plans, run to quiescence
through the safety monitor) and assert its two headline results: zero
violations for feasible exchanges under the synthesized protocol, and ≥1
detected honest loss for the naive direct exchange under the same fault
schedules (the differential proves the detector is live).
"""

from repro.analysis.chaos_study import ChaosConfig, chaos_study
from repro.sim.faults import FaultConfig, FaultPlan, LinkFault
from repro.sim.runtime import Simulation
from repro.sim.safety import evaluate_safety
from repro.workloads import example1

SMOKE = ChaosConfig(scenarios=120, seed=1996)


def test_bench_chaos_sweep_no_honest_loss(benchmark):
    report = benchmark(chaos_study, SMOKE, processes=1)
    assert report.simulated >= 100
    assert report.violation_count == 0, "\n".join(report.describe())
    assert report.differential_ok, "direct baseline showed no harm"


def test_bench_chaos_crash_heavy_reversals(benchmark):
    config = ChaosConfig(
        scenarios=80,
        seed=7,
        faults=FaultConfig(
            crash_probability=0.9, permanent_silence_probability=0.7
        ),
    )
    report = benchmark(chaos_study, config, processes=1)
    assert report.violation_count == 0, "\n".join(report.describe())
    counts = report.recovery_counts
    assert counts.get("reversed", 0) + counts.get("mixed", 0) > 0


def test_bench_single_faulty_run_example1(benchmark):
    plan = FaultPlan(
        seed=5,
        links=(LinkFault(drop=0.3, duplicate=0.2, max_delay=2.0),),
        heal_at=30.0,
    )

    def run():
        problem = example1()
        sim = Simulation.from_problem(problem, deadline=200.0, fault_plan=plan)
        result = sim.run(max_time=5000.0)
        return problem, result

    problem, result = benchmark(run)
    report = evaluate_safety(problem, result)
    assert report.honest_parties_safe(), "\n".join(report.describe())
    assert result.stats.retransmits > 0  # the faults actually bit
