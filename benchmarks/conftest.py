"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one of the paper's figures or worked examples
(see DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
results).  Each test both *asserts the paper's result* and *times* the
operation that produces it, so ``pytest benchmarks/ --benchmark-only``
doubles as the reproduction record and a performance baseline.
"""

from __future__ import annotations

from repro.core.reduction import Rule


def paper_reduction_script(sg):
    """The circled elimination order of Figure 3 (Example #1), as steps."""

    def edge(principal, trusted_name, conj_agent):
        commitment = sg.commitment_for(sg.interaction.find_edge(principal, trusted_name))
        conjunction = next(j for j in sg.conjunctions if j.agent.name == conj_agent)
        return sg.find_edge(commitment, conjunction)

    return [
        (Rule.COMMITMENT_FRINGE, edge("Producer", "Trusted2", "Trusted2")),
        (Rule.CONJUNCTION_FRINGE, edge("Broker", "Trusted2", "Trusted2")),
        (Rule.COMMITMENT_FRINGE, edge("Consumer", "Trusted1", "Trusted1")),
        (Rule.CONJUNCTION_FRINGE, edge("Broker", "Trusted1", "Trusted1")),
        (Rule.COMMITMENT_FRINGE, edge("Broker", "Trusted1", "Broker")),
        (Rule.COMMITMENT_FRINGE, edge("Broker", "Trusted2", "Broker")),
    ]


def figure4_initial_script(sg):
    """The four eliminations the paper performs on Figure 4 before the impasse."""

    def edge(principal, trusted_name, conj_agent):
        commitment = sg.commitment_for(sg.interaction.find_edge(principal, trusted_name))
        conjunction = next(j for j in sg.conjunctions if j.agent.name == conj_agent)
        return sg.find_edge(commitment, conjunction)

    return [
        (Rule.COMMITMENT_FRINGE, edge("Source1", "Trusted2", "Trusted2")),
        (Rule.COMMITMENT_FRINGE, edge("Source2", "Trusted4", "Trusted4")),
        (Rule.CONJUNCTION_FRINGE, edge("Broker1", "Trusted2", "Trusted2")),
        (Rule.CONJUNCTION_FRINGE, edge("Broker2", "Trusted4", "Trusted4")),
    ]


PAPER_SECTION5_LISTING = [
    "1. Producer sends document to Trusted2.",
    "2. Trusted2 notifies Broker.",
    "3. Consumer sends money to Trusted1.",
    "4. Trusted1 notifies Broker.",
    "5. Broker sends money to Trusted2.",
    "6. Trusted2 sends document to Broker.",
    "7. Trusted2 sends money to Producer.",
    "8. Broker sends document to Trusted1.",
    "9. Trusted1 sends document to Consumer.",
    "10. Trusted1 sends money to Broker.",
]
