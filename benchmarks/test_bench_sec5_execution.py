"""SEQ5 — §5: the recovered execution sequence for Example #1, verbatim.

Paper listing (ten steps): producer→T2, T2 notifies broker, consumer→T1,
T1 notifies broker, broker→T2 (red edge delayed), T2→broker, T2→producer,
broker→T1, T1→consumer, T1→broker.
"""

from conftest import PAPER_SECTION5_LISTING, paper_reduction_script

from repro.core.execution import recover_execution
from repro.core.reduction import replay
from repro.workloads import example1

PROBLEM = example1()


def _recover():
    sg = PROBLEM.sequencing_graph()
    trace = replay(sg, paper_reduction_script(sg))
    return recover_execution(trace)


def test_bench_section5_exact_listing(benchmark):
    sequence = benchmark(_recover)
    assert sequence.describe() == PAPER_SECTION5_LISTING


def test_bench_section5_red_edge_delayed(benchmark):
    sequence = benchmark(_recover)
    # The broker's delivery to Trusted1 (its red commitment) is committed
    # third but executed in steps 8-10, after the black-edge exchange.
    deposits = [s for s in sequence.steps if s.kind.value == "deposit"]
    assert deposits[-1].action.sender.name == "Broker"
    assert deposits[-1].action.recipient.name == "Trusted1"


def test_bench_section5_sequence_is_physically_executable(benchmark):
    sequence = benchmark(_recover)
    assert sequence.violated_constraints() == []
