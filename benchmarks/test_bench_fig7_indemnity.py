"""FIG7 — Figure 7 / §6: indemnity orderings on the three-broker bundle.

Paper, with customer prices $10/$20/$30:

* Order #1 — Broker1 indemnifies first ($50), Broker2 next ($40): **$90**.
* Order #2 — Broker3 first ($30), Broker2 next ($40): **$70**.
* The greedy rule (highest-cost subtree first) minimizes the total; the
  cheapest piece goes last and needs no indemnity.
"""

from repro.core.indemnity import (
    brute_force_minimal_plan,
    minimal_indemnity_plan,
    plan_indemnities,
    required_indemnity,
)
from repro.workloads import figure7

PROBLEM = figure7()
EDGES = {
    e.trusted.name: e
    for e in PROBLEM.interaction.edges
    if e.principal.name == "Consumer"
}
D1, D2, D3 = EDGES["Trusted1"], EDGES["Trusted3"], EDGES["Trusted5"]


def test_bench_required_amounts(benchmark):
    amounts = benchmark(
        lambda: tuple(required_indemnity(PROBLEM, e) for e in (D1, D2, D3))
    )
    # Each piece is indemnified by the cost of the OTHER pieces.
    assert amounts == (5000, 4000, 3000)


def test_bench_ordering1_costs_90(benchmark):
    plan = benchmark(plan_indemnities, PROBLEM, [D1, D2, D3])
    assert plan.feasible
    assert plan.total_cents == 9000
    assert [o.offeror.name for o in plan.offers] == ["Broker1", "Broker2"]
    assert [o.amount_cents for o in plan.offers] == [5000, 4000]


def test_bench_ordering1_intermediate_still_infeasible(benchmark):
    # "Even after Broker #1 offers the indemnity, the transaction is not
    # feasible, because the problem is essentially still a two broker
    # problem between #2 and #3."
    plan = benchmark(
        plan_indemnities, PROBLEM, [D1], stop_when_feasible=False
    )
    assert not plan.feasible


def test_bench_ordering2_costs_70(benchmark):
    plan = benchmark(plan_indemnities, PROBLEM, [D3, D2, D1])
    assert plan.feasible
    assert plan.total_cents == 7000
    assert [o.amount_cents for o in plan.offers] == [3000, 4000]


def test_bench_greedy_minimizes(benchmark):
    plan = benchmark(minimal_indemnity_plan, PROBLEM)
    assert plan.feasible
    assert plan.total_cents == 7000
    # Greedy = descending subtree cost: d3 ($30) first, then d2 ($20);
    # the cheapest piece (d1) is last and uncovered.
    assert [o.covers.trusted.name for o in plan.offers] == ["Trusted5", "Trusted3"]


def test_bench_greedy_is_globally_optimal(benchmark):
    brute = benchmark(brute_force_minimal_plan, PROBLEM)
    assert brute.total_cents == minimal_indemnity_plan(PROBLEM).total_cents == 7000
