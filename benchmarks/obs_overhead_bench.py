"""Measure the observability layer's cost on the flat-core hot paths.

Three questions, answered on the 1024-broker ``resale_chain`` verdict bench
(the acceptance bar for the tracing layer)::

    PYTHONPATH=src python benchmarks/obs_overhead_bench.py --assert-overhead 2.0

1. **Disabled overhead** — the public entry points
   (:func:`~repro.core.flatcore.check_feasibility_flat`,
   :func:`~repro.core.flatcore.run_reduction`) capture the active tracer
   once and branch to the uninstrumented implementation when none is
   installed.  Comparing the public wrapper against a direct call of the
   private implementation measures exactly that guard; ``--assert-overhead``
   fails the run if it exceeds the given percentage.
2. **Metrics-only cost** — the same workload inside
   :func:`~repro.obs.runtime.metrics_scope` (what pooled fuzz/chaos workers
   pay per case).
3. **Full-tracing cost** — inside :func:`~repro.obs.runtime.tracing` with
   span recording on (what ``repro trace`` pays).

The guard comparisons sample the two variants *interleaved* (A, B, A, B, …)
and compare best-of-N, so CPU frequency drift between two back-to-back
blocks does not masquerade as instrumentation overhead; the absolute-cost
numbers (metrics/spans) are plain medians.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

from repro.core.flatcore import compile_graph, run_reduction
from repro.core.flatcore.runtime import (
    _check_feasibility_impl,
    _run_reduction_impl,
    check_feasibility_flat,
)
from repro.obs import metrics_scope, tracing
from repro.workloads import resale_chain


def median_seconds(fn, repeat: int) -> float:
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def paired_best_seconds(
    fn_a, fn_b, repeat: int, inner: int = 5
) -> tuple[float, float]:
    """Best per-run seconds for two variants, sampled interleaved.

    Each sample times a block of *inner* calls (single-call samples at the
    few-millisecond scale are dominated by scheduler jitter) and the best
    block per variant wins.
    """
    fn_a(), fn_b()  # warm-up (first run pays allocator/cache setup)
    best_a = best_b = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(inner):
            fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(inner):
            fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a / inner, best_b / inner


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--brokers", type=int, default=1024)
    parser.add_argument("--repeat", type=int, default=9, help="runs per median")
    parser.add_argument(
        "--assert-overhead",
        type=float,
        metavar="PCT",
        help="fail if the disabled-tracer guard costs more than PCT percent "
        "on either hot path",
    )
    args = parser.parse_args(argv)

    n = args.brokers
    problem = resale_chain(n, retail=float(max(1000, 2 * n)))
    compiled = compile_graph(problem.sequencing_graph())

    # --- guarded wrappers vs raw implementations (interleaved) -------------
    raw_verdict, guarded_verdict = paired_best_seconds(
        lambda: _check_feasibility_impl(compiled, True),
        lambda: check_feasibility_flat(compiled),
        args.repeat,
    )
    raw_reduce, guarded_reduce = paired_best_seconds(
        lambda: _run_reduction_impl(compiled, "fifo", None, True, None),
        lambda: run_reduction(compiled),
        args.repeat,
    )

    def traced_verdict() -> None:
        with tracing():
            check_feasibility_flat(compiled)

    def metered_reduce() -> None:
        with metrics_scope():
            run_reduction(compiled)

    def traced_reduce() -> None:
        with tracing():
            run_reduction(compiled)

    metrics_verdict = median_seconds(traced_verdict, args.repeat)
    metrics_reduce = median_seconds(metered_reduce, args.repeat)
    spans_reduce = median_seconds(traced_reduce, args.repeat)

    def pct(guarded: float, raw: float) -> float:
        return (guarded / raw - 1.0) * 100.0

    verdict_overhead = pct(guarded_verdict, raw_verdict)
    reduce_overhead = pct(guarded_reduce, raw_reduce)
    print(f"workload: resale_chain({n}), {compiled.n_edges} edges")
    print(
        f"verdict loop:  raw {raw_verdict * 1e3:8.3f}ms  guarded "
        f"{guarded_verdict * 1e3:8.3f}ms  ({verdict_overhead:+.2f}%)  "
        f"traced {metrics_verdict * 1e3:8.3f}ms"
    )
    print(
        f"parity engine: raw {raw_reduce * 1e3:8.3f}ms  guarded "
        f"{guarded_reduce * 1e3:8.3f}ms  ({reduce_overhead:+.2f}%)  "
        f"metrics {metrics_reduce * 1e3:8.3f}ms  spans {spans_reduce * 1e3:8.3f}ms"
    )

    if args.assert_overhead is not None:
        failures = [
            f"{label} guard overhead {overhead:+.2f}% exceeds "
            f"{args.assert_overhead}%"
            for label, overhead in (
                ("verdict loop", verdict_overhead),
                ("parity engine", reduce_overhead),
            )
            if overhead > args.assert_overhead
        ]
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
