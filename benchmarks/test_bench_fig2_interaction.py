"""FIG2 — Figure 2: the interaction graph of Example #2.

Paper: one consumer, two broker/source pairs, four trusted intermediaries;
the consumer wants both documents (d1 from Broker1/Source1, d2 from
Broker2/Source2) or neither.
"""

from repro.workloads import example2


def test_bench_figure2_interaction_graph(benchmark):
    problem = benchmark(example2)
    graph = problem.interaction
    graph.validate()

    assert {p.name for p in graph.principals} == {
        "Consumer",
        "Broker1",
        "Broker2",
        "Source1",
        "Source2",
    }
    assert len(graph.trusted_components) == 4
    assert len(graph.edges) == 8

    # Figure 2's wiring: T1 consumer-broker1, T2 broker1-source1,
    # T3 consumer-broker2, T4 broker2-source2.
    def endpoints(t):
        return {e.principal.name for e in graph.edges if e.trusted.name == t}

    assert endpoints("Trusted1") == {"Consumer", "Broker1"}
    assert endpoints("Trusted2") == {"Broker1", "Source1"}
    assert endpoints("Trusted3") == {"Consumer", "Broker2"}
    assert endpoints("Trusted4") == {"Broker2", "Source2"}

    # The consumer is internal (degree 2): its conjunction is the bundle.
    consumer = next(p for p in graph.principals if p.name == "Consumer")
    assert graph.degree(consumer) == 2

    # Both brokers demand a committed buyer first.
    marks = {(e.principal.name, e.trusted.name) for e in graph.priority_edges}
    assert marks == {("Broker1", "Trusted1"), ("Broker2", "Trusted3")}
