"""FLATCORE — the compiled flat-array core against the indexed engine.

Times the three flat paths (compile, free-order verdict, parity trace)
next to the indexed engine at the same sizes as the SCALE bench, and the
packed arena against one-at-a-time reduction for batches.  Every benchmark
also asserts verdict correctness, so the numbers can't drift away from the
semantics.  ``benchmarks/flatcore_bench.py`` is the standalone twin that
writes ``BENCH_flatcore.json``.
"""

import pytest

from repro.analysis import batch_specs
from repro.core.flatcore import (
    check_feasibility_flat,
    check_feasibility_flat_batch,
    compile_graph,
    reduce_graph_compiled,
)
from repro.core.reduction import reduce_graph
from repro.workloads import RandomProblemConfig, resale_chain

SIZES = [64, 256, 1024]


def _chain_graph(n_brokers):
    problem = resale_chain(n_brokers, retail=float(max(1000, 2 * n_brokers)))
    return problem.sequencing_graph()


@pytest.mark.parametrize("n_brokers", SIZES)
def test_bench_flat_compile(benchmark, n_brokers):
    sg = _chain_graph(n_brokers)
    compiled = benchmark(compile_graph, sg)
    assert compiled.n_edges == len(sg.edges)


@pytest.mark.parametrize("n_brokers", SIZES)
def test_bench_flat_verdict_loop(benchmark, n_brokers):
    compiled = compile_graph(_chain_graph(n_brokers))
    verdict = benchmark(check_feasibility_flat, compiled)
    assert verdict.feasible and verdict.remaining == 0


@pytest.mark.parametrize("n_brokers", SIZES)
def test_bench_flat_trace_path(benchmark, n_brokers):
    sg = _chain_graph(n_brokers)
    compiled = compile_graph(sg)
    trace = benchmark(reduce_graph_compiled, compiled)
    assert trace.feasible
    assert len(trace.steps) == len(sg.edges)


@pytest.mark.parametrize("n_brokers", SIZES)
def test_bench_indexed_reference_point(benchmark, n_brokers):
    # The same graphs through the indexed engine, so each bench run carries
    # its own comparison column.
    sg = _chain_graph(n_brokers)
    trace = benchmark(reduce_graph, sg)
    assert trace.feasible


@pytest.mark.parametrize("engine", ["indexed", "flat"])
def test_bench_batch_throughput(benchmark, engine):
    specs = batch_specs(
        100,
        RandomProblemConfig(n_principals=12, n_exchanges=9, priority_probability=0.5),
        seed=0,
    )
    graphs = [spec.build().sequencing_graph() for spec in specs]

    if engine == "flat":
        verdicts = benchmark(check_feasibility_flat_batch, graphs)
        assert len(verdicts) == 100
    else:
        traces = benchmark(lambda: [reduce_graph(g) for g in graphs])
        assert len(traces) == 100
