"""COST8 — §8: the cost of mistrust.

Paper claims reproduced here:

* two mutually trusting parties exchange with 2 messages; through an
  intermediary, 4 — a constant 2× overhead;
* a single universally trusted intermediary makes *any* exchange feasible,
  without indemnities — including Figure 2, Figure 7, and the poor broker.
"""

from repro.analysis.cost import chain_cost_sweep, measured_cost, static_cost
from repro.baselines.direct import (
    direct_exchange,
    direct_message_count,
    mediated_message_count,
)
from repro.baselines.universal_intermediary import universal_exchange
from repro.workloads import example1, example2, figure7, poor_broker, simple_purchase


def test_bench_two_vs_four_messages(benchmark):
    outcome = benchmark(direct_exchange)
    assert outcome.completed and outcome.messages == direct_message_count() == 2
    assert mediated_message_count() == 4
    # Measured on the simulator: one mediated exchange = 4 transfers.
    measured = measured_cost(simple_purchase())
    assert measured.transfers == 4


def test_bench_mistrust_overhead_is_constant_2x(benchmark):
    rows = benchmark(chain_cost_sweep, 6)
    assert [r.ratio for r in rows] == [2.0] * 7
    # Messages grow linearly in exchanges under both regimes.
    assert [r.direct for r in rows] == [2 * r.n_exchanges for r in rows]
    assert [r.mediated_static for r in rows] == [4 * r.n_exchanges for r in rows]
    assert [r.measured_total for r in rows] == [5 * r.n_exchanges for r in rows]


def test_bench_universal_intermediary_feasibility(benchmark):
    """§8: every decentrally infeasible example completes via one agent."""

    def run_all():
        return [
            universal_exchange(factory())
            for factory in (example2, figure7, poor_broker)
        ]

    outcomes = benchmark(run_all)
    assert all(o.feasible for o in outcomes)
    for outcome in outcomes:
        assert outcome.messages == 2 * len(outcome.transfers) // 2  # 2·|E|


def test_bench_universal_message_cost(benchmark):
    problem = example2()
    outcome = benchmark(universal_exchange, problem)
    cost = static_cost(problem)
    # Universal uses 2·|E| = 16 transfers and no notifies; decentralized
    # needs the same 16 transfers plus notifies — and indemnity capital.
    assert outcome.messages == 16
    assert cost.mediated_with_notifies == 20
    assert outcome.messages <= cost.mediated_with_notifies


def test_bench_latency_cost_of_mistrust(benchmark):
    """§8 extended to time: the decentralized protocol's critical path grows
    linearly with chain depth while the universal intermediary stays at two
    message delays and direct trust at one."""
    from repro.analysis.latency import chain_latency_sweep

    rows = benchmark(chain_latency_sweep, 5)
    values = [r.decentralized for r in rows]
    deltas = [b - a for a, b in zip(values, values[1:])]
    assert len(set(deltas)) == 1 and deltas[0] > 0  # linear in depth
    assert all(r.universal == 2.0 and r.direct == 1.0 for r in rows)
    assert rows[-1].slowdown_vs_universal >= 10
